#![warn(missing_docs)]

//! # light-setops — sorted-set intersection kernels for LIGHT
//!
//! Candidate-set computation in subgraph enumeration is set intersection
//! over sorted `u32` arrays (CSR neighbor lists and cached candidate sets).
//! This crate implements the paper's §VII-A kernel family:
//!
//! * **Merge** — linear two-pointer merge, `O(|S1| + |S2|)`. Best when the
//!   inputs have similar sizes.
//! * **Galloping** — for each element of the smaller set, exponential +
//!   binary search in the larger set, `O(|S1| log |S2|)`. Best under
//!   *cardinality skew*.
//! * **Hybrid** (Algorithm 4) — picks Merge when `|S1|/|S2| < δ` and
//!   `|S2|/|S1| < δ`, otherwise Galloping. The paper configures `δ = 50`
//!   following the study of Lemire et al. [14].
//! * **AVX2 and AVX-512 variants** of both, using `core::arch::x86_64`
//!   intrinsics behind runtime feature detection
//!   (`is_x86_feature_detected!`), with automatic fallback down the tier
//!   ladder (AVX-512 → AVX2 → scalar) on other hardware. The AVX-512 tier
//!   uses native unsigned compares and `vpcompressd` compress-store emit.
//!
//! Every kernel records into an [`IntersectStats`] so the experiment
//! harnesses can reproduce Fig. 5 (number of set intersections) and
//! Table III (percentage of Galloping searches).
//!
//! ```
//! use light_setops::{Intersector, IntersectKind, IntersectStats};
//!
//! let a = vec![1u32, 3, 5, 7, 9];
//! let b = vec![3u32, 4, 5, 6, 7];
//! let isec = Intersector::new(IntersectKind::HybridAvx2); // falls back if no AVX2
//! let mut out = Vec::new();
//! let mut stats = IntersectStats::default();
//! isec.intersect_into(&a, &b, &mut out, &mut stats);
//! assert_eq!(out, vec![3, 5, 7]);
//! assert_eq!(stats.total, 1);
//! ```

pub mod hybrid;
pub mod multi;
pub mod scalar;
pub mod simd;
pub mod simd512;
pub mod stats;
pub mod trim;

pub use hybrid::{IntersectKind, Intersector, DEFAULT_DELTA};
pub use multi::{intersect_many, intersect_many_recorded};
pub use stats::{IntersectStats, KernelTier};
pub use trim::trim_into;
