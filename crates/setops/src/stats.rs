//! Instrumentation counters for set intersections.
//!
//! The paper reports two instrumented quantities: the *number of set
//! intersections* performed by each algorithm variant (Fig. 5) and the
//! *percentage of Galloping searches* chosen by Hybrid (Table III). The
//! kernels record both into this plain struct, which engines own per run
//! (and per worker in the parallel driver, merged at the end) — no atomics
//! on the hot path.

/// Counters accumulated across intersection calls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntersectStats {
    /// Total pairwise set intersections performed.
    pub total: u64,
    /// Intersections dispatched to the Merge kernel.
    pub merge: u64,
    /// Intersections dispatched to the Galloping kernel.
    pub galloping: u64,
    /// Total elements scanned (comparisons are proportional); a finer
    /// work measure than call counts, used by ablation benches.
    pub elements_scanned: u64,
}

impl IntersectStats {
    /// Percentage of intersections that used Galloping (Table III).
    /// Returns 0.0 when no intersections happened.
    pub fn galloping_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.galloping as f64 / self.total as f64
        }
    }

    /// Merge another counter set into this one (used when joining parallel
    /// workers).
    pub fn merge_from(&mut self, other: &IntersectStats) {
        self.total += other.total;
        self.merge += other.merge;
        self.galloping += other.galloping;
        self.elements_scanned += other.elements_scanned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galloping_pct_empty() {
        assert_eq!(IntersectStats::default().galloping_pct(), 0.0);
    }

    #[test]
    fn galloping_pct() {
        let s = IntersectStats {
            total: 8,
            merge: 6,
            galloping: 2,
            elements_scanned: 100,
        };
        assert!((s.galloping_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn merge_from_accumulates() {
        let mut a = IntersectStats {
            total: 1,
            merge: 1,
            galloping: 0,
            elements_scanned: 10,
        };
        let b = IntersectStats {
            total: 2,
            merge: 0,
            galloping: 2,
            elements_scanned: 5,
        };
        a.merge_from(&b);
        assert_eq!(a.total, 3);
        assert_eq!(a.merge, 1);
        assert_eq!(a.galloping, 2);
        assert_eq!(a.elements_scanned, 15);
    }
}
