//! Instrumentation counters for set intersections.
//!
//! The paper reports two instrumented quantities: the *number of set
//! intersections* performed by each algorithm variant (Fig. 5) and the
//! *percentage of Galloping searches* chosen by Hybrid (Table III). The
//! kernels record both into this plain struct, which engines own per run
//! (and per worker in the parallel driver, merged at the end) — no atomics
//! on the hot path.

/// The SIMD tier a kernel call executed on. Indexes the per-tier arrays in
/// [`IntersectStats`], so the Table III galloping share can be broken down
/// per tier (scalar / AVX2 / AVX-512).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum KernelTier {
    /// Scalar kernels (no SIMD).
    Scalar = 0,
    /// 256-bit AVX2 kernels.
    Avx2 = 1,
    /// 512-bit AVX-512 kernels.
    Avx512 = 2,
}

impl KernelTier {
    /// All tiers, index order.
    pub const ALL: [KernelTier; 3] = [KernelTier::Scalar, KernelTier::Avx2, KernelTier::Avx512];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Avx2 => "avx2",
            KernelTier::Avx512 => "avx512",
        }
    }
}

/// Counters accumulated across intersection calls.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntersectStats {
    /// Total pairwise set intersections performed.
    pub total: u64,
    /// Intersections dispatched to the Merge kernel.
    pub merge: u64,
    /// Intersections dispatched to the Galloping kernel.
    pub galloping: u64,
    /// Total elements scanned (comparisons are proportional); a finer
    /// work measure than call counts, used by ablation benches.
    pub elements_scanned: u64,
    /// Intersections executed per kernel tier, indexed by [`KernelTier`].
    pub tier_calls: [u64; 3],
    /// Galloping dispatches per kernel tier, indexed by [`KernelTier`]
    /// (the per-tier numerator of the Table III galloping share).
    pub tier_galloping: [u64; 3],
    /// Adjacency-trim folds performed (see [`crate::trim::trim_into`]);
    /// the pairwise intersections inside a trim are counted in the fields
    /// above as usual.
    pub trims: u64,
}

impl IntersectStats {
    /// Percentage of intersections that used Galloping (Table III).
    /// Returns 0.0 when no intersections happened.
    pub fn galloping_pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            100.0 * self.galloping as f64 / self.total as f64
        }
    }

    /// Record one intersection on `tier`, dispatched to Galloping when
    /// `galloping` (otherwise Merge).
    #[inline]
    pub fn record(&mut self, tier: KernelTier, galloping: bool) {
        self.total += 1;
        self.tier_calls[tier as usize] += 1;
        if galloping {
            self.galloping += 1;
            self.tier_galloping[tier as usize] += 1;
        } else {
            self.merge += 1;
        }
    }

    /// Percentage of `tier`'s intersections that used Galloping
    /// (Table III broken down per kernel tier). 0.0 when the tier was
    /// never selected.
    pub fn galloping_pct_for(&self, tier: KernelTier) -> f64 {
        let calls = self.tier_calls[tier as usize];
        if calls == 0 {
            0.0
        } else {
            100.0 * self.tier_galloping[tier as usize] as f64 / calls as f64
        }
    }

    /// Merge another counter set into this one (used when joining parallel
    /// workers).
    pub fn merge_from(&mut self, other: &IntersectStats) {
        self.total += other.total;
        self.merge += other.merge;
        self.galloping += other.galloping;
        self.elements_scanned += other.elements_scanned;
        for t in 0..3 {
            self.tier_calls[t] += other.tier_calls[t];
            self.tier_galloping[t] += other.tier_galloping[t];
        }
        self.trims += other.trims;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn galloping_pct_empty() {
        assert_eq!(IntersectStats::default().galloping_pct(), 0.0);
    }

    #[test]
    fn galloping_pct() {
        let s = IntersectStats {
            total: 8,
            merge: 6,
            galloping: 2,
            elements_scanned: 100,
            ..Default::default()
        };
        assert!((s.galloping_pct() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn merge_from_accumulates() {
        let mut a = IntersectStats {
            total: 1,
            merge: 1,
            galloping: 0,
            elements_scanned: 10,
            tier_calls: [1, 0, 0],
            tier_galloping: [0, 0, 0],
            trims: 1,
        };
        let b = IntersectStats {
            total: 2,
            merge: 0,
            galloping: 2,
            elements_scanned: 5,
            tier_calls: [0, 1, 1],
            tier_galloping: [0, 1, 1],
            trims: 2,
        };
        a.merge_from(&b);
        assert_eq!(a.trims, 3);
        assert_eq!(a.total, 3);
        assert_eq!(a.merge, 1);
        assert_eq!(a.galloping, 2);
        assert_eq!(a.elements_scanned, 15);
        assert_eq!(a.tier_calls, [1, 1, 1]);
        assert_eq!(a.tier_galloping, [0, 1, 1]);
    }

    #[test]
    fn record_attributes_tier_and_dispatch() {
        let mut s = IntersectStats::default();
        s.record(KernelTier::Avx512, true);
        s.record(KernelTier::Avx512, false);
        s.record(KernelTier::Scalar, false);
        assert_eq!(s.total, 3);
        assert_eq!(s.merge, 2);
        assert_eq!(s.galloping, 1);
        assert_eq!(s.tier_calls, [1, 0, 2]);
        assert_eq!(s.tier_galloping, [0, 0, 1]);
        assert!((s.galloping_pct_for(KernelTier::Avx512) - 50.0).abs() < 1e-9);
        assert_eq!(s.galloping_pct_for(KernelTier::Avx2), 0.0);
        assert_eq!(s.galloping_pct_for(KernelTier::Scalar), 0.0);
    }

    #[test]
    fn tier_names() {
        assert_eq!(KernelTier::Scalar.name(), "scalar");
        assert_eq!(KernelTier::Avx2.name(), "avx2");
        assert_eq!(KernelTier::Avx512.name(), "avx512");
        assert_eq!(KernelTier::ALL.len(), 3);
    }
}
