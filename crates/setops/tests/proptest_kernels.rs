//! Property tests: every intersection kernel must agree with the trivially
//! correct reference implementation on arbitrary sorted inputs, including
//! adversarial size skews and values spanning the full u32 range.

use proptest::collection::btree_set;
use proptest::prelude::*;

use light_setops::scalar::{galloping_into, merge_into, reference_intersection};
use light_setops::simd::{galloping_avx2_into, merge_avx2_into};
use light_setops::simd512::{galloping_avx512_into, merge_avx512_into};
use light_setops::{intersect_many, IntersectKind, IntersectStats, Intersector, DEFAULT_DELTA};

fn sorted_vec(max: u32, size: usize) -> impl Strategy<Value = Vec<u32>> {
    btree_set(0..max, 0..size).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn scalar_merge_matches_reference(
        a in sorted_vec(1000, 200),
        b in sorted_vec(1000, 200),
    ) {
        let mut out = Vec::new();
        merge_into(&a, &b, &mut out);
        prop_assert_eq!(out, reference_intersection(&a, &b));
    }

    #[test]
    fn scalar_galloping_matches_reference(
        a in sorted_vec(1000, 200),
        b in sorted_vec(1000, 200),
    ) {
        let mut out = Vec::new();
        galloping_into(&a, &b, &mut out);
        prop_assert_eq!(out, reference_intersection(&a, &b));
    }

    #[test]
    fn avx2_merge_matches_reference(
        a in sorted_vec(500, 300),
        b in sorted_vec(500, 300),
    ) {
        let mut out = Vec::new();
        merge_avx2_into(&a, &b, &mut out);
        prop_assert_eq!(out, reference_intersection(&a, &b));
    }

    #[test]
    fn avx2_galloping_matches_reference(
        a in sorted_vec(500, 300),
        b in sorted_vec(500, 300),
    ) {
        let mut out = Vec::new();
        galloping_avx2_into(&a, &b, &mut out);
        prop_assert_eq!(out, reference_intersection(&a, &b));
    }

    #[test]
    fn avx512_merge_matches_reference(
        a in sorted_vec(500, 300),
        b in sorted_vec(500, 300),
    ) {
        let mut out = Vec::new();
        merge_avx512_into(&a, &b, &mut out);
        prop_assert_eq!(out, reference_intersection(&a, &b));
    }

    #[test]
    fn avx512_galloping_matches_reference(
        a in sorted_vec(500, 300),
        b in sorted_vec(500, 300),
    ) {
        let mut out = Vec::new();
        galloping_avx512_into(&a, &b, &mut out);
        prop_assert_eq!(out, reference_intersection(&a, &b));
    }

    #[test]
    fn kernels_handle_full_u32_range(
        a in sorted_vec(u32::MAX, 100),
        b in sorted_vec(u32::MAX, 100),
    ) {
        let expect = reference_intersection(&a, &b);
        let mut out = Vec::new();
        merge_avx2_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expect);
        galloping_avx2_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expect);
        merge_avx512_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expect);
        galloping_avx512_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expect);
        galloping_into(&a, &b, &mut out);
        prop_assert_eq!(&out, &expect);
    }

    // All three tiers must agree element-for-element on the same inputs —
    // not just each against the reference, but mutually, so a shared bug
    // in the reference cannot mask a divergence.
    #[test]
    fn all_tiers_identical(
        a in sorted_vec(u32::MAX, 400),
        b in sorted_vec(u32::MAX, 400),
    ) {
        let (mut scalar_out, mut avx2_out, mut avx512_out) =
            (Vec::new(), Vec::new(), Vec::new());
        merge_into(&a, &b, &mut scalar_out);
        merge_avx2_into(&a, &b, &mut avx2_out);
        merge_avx512_into(&a, &b, &mut avx512_out);
        prop_assert_eq!(&scalar_out, &avx2_out);
        prop_assert_eq!(&scalar_out, &avx512_out);
        galloping_into(&a, &b, &mut scalar_out);
        galloping_avx2_into(&a, &b, &mut avx2_out);
        galloping_avx512_into(&a, &b, &mut avx512_out);
        prop_assert_eq!(&scalar_out, &avx2_out);
        prop_assert_eq!(&scalar_out, &avx512_out);
    }

    // Adversarial fixed shapes paired with an arbitrary other side: empty,
    // length-1, fully-overlapping, and disjoint inputs across every kind.
    #[test]
    fn adversarial_shapes_all_kinds(b in sorted_vec(u32::MAX, 300)) {
        let disjoint: Vec<u32> = b.iter().map(|x| x ^ 1).filter(|x| b.binary_search(x).is_err()).collect();
        let mut disjoint_sorted = disjoint;
        disjoint_sorted.sort_unstable();
        disjoint_sorted.dedup();
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], b.clone()),                                // empty
            (b.clone(), vec![]),                                // empty other side
            (b.first().copied().into_iter().collect(), b.clone()), // len-1 hit
            (vec![u32::MAX / 2], b.clone()),                    // len-1 probe
            (b.clone(), b.clone()),                             // fully overlapping
            (disjoint_sorted, b.clone()),                       // disjoint
        ];
        for (x, y) in &cases {
            let expect = reference_intersection(x, y);
            for kind in IntersectKind::ALL {
                let isec = Intersector::new(kind);
                let mut out = Vec::new();
                let mut st = IntersectStats::default();
                isec.intersect_into(x, y, &mut out, &mut st);
                prop_assert_eq!(&out, &expect, "{}", kind.name());
            }
        }
    }

    // Skew strictly beyond δ forces the galloping arm of every hybrid
    // kind; all tiers must still agree with the reference.
    #[test]
    fn skew_beyond_delta_all_kinds(
        small in sorted_vec(1_000_000, 6),
        large in sorted_vec(1_000_000, 4000),
    ) {
        // Skew dispatch needs a non-empty smaller side: empty operands
        // short-circuit before kernel selection (and count as Merge).
        let mut small = small;
        if small.is_empty() {
            small.push(500_000);
        }
        // Pad `large` deterministically so |large| > δ·|small| always holds.
        let mut large = large;
        let need = small.len() * DEFAULT_DELTA + 1;
        let mut next = 1_000_001u32;
        while large.len() < need {
            large.push(next);
            next += 1;
        }
        let expect = reference_intersection(&small, &large);
        for kind in IntersectKind::ALL {
            let isec = Intersector::new(kind);
            let mut out = Vec::new();
            let mut st = IntersectStats::default();
            isec.intersect_into(&small, &large, &mut out, &mut st);
            prop_assert_eq!(&out, &expect, "{}", kind.name());
            match kind {
                IntersectKind::HybridScalar
                | IntersectKind::HybridAvx2
                | IntersectKind::HybridAvx512 => prop_assert_eq!(st.galloping, 1),
                _ => prop_assert_eq!(st.galloping, 0),
            }
        }
    }

    #[test]
    fn skewed_inputs(
        small in sorted_vec(100_000, 8),
        large in sorted_vec(100_000, 3000),
    ) {
        let expect = reference_intersection(&small, &large);
        for kind in IntersectKind::ALL {
            let isec = Intersector::new(kind);
            let mut out = Vec::new();
            let mut st = IntersectStats::default();
            isec.intersect_into(&small, &large, &mut out, &mut st);
            prop_assert_eq!(&out, &expect, "{}", kind.name());
        }
    }

    #[test]
    fn intersection_is_commutative(
        a in sorted_vec(2000, 300),
        b in sorted_vec(2000, 300),
    ) {
        for kind in IntersectKind::ALL {
            let isec = Intersector::new(kind);
            let mut st = IntersectStats::default();
            let (mut ab, mut ba) = (Vec::new(), Vec::new());
            isec.intersect_into(&a, &b, &mut ab, &mut st);
            isec.intersect_into(&b, &a, &mut ba, &mut st);
            prop_assert_eq!(&ab, &ba, "{}", kind.name());
        }
    }

    #[test]
    fn output_is_sorted_subset(
        a in sorted_vec(3000, 400),
        b in sorted_vec(3000, 400),
    ) {
        for kind in IntersectKind::ALL {
            let isec = Intersector::new(kind);
            let mut out = Vec::new();
            let mut st = IntersectStats::default();
            isec.intersect_into(&a, &b, &mut out, &mut st);
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "not strictly sorted");
            prop_assert!(out.iter().all(|x| a.binary_search(x).is_ok()));
            prop_assert!(out.iter().all(|x| b.binary_search(x).is_ok()));
        }
    }

    #[test]
    fn multiway_matches_pairwise_fold(
        a in sorted_vec(500, 150),
        b in sorted_vec(500, 150),
        c in sorted_vec(500, 150),
    ) {
        let expect: Vec<u32> = reference_intersection(&reference_intersection(&a, &b), &c);
        let isec = Intersector::new(IntersectKind::HybridAvx2);
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        let mut st = IntersectStats::default();
        intersect_many(&isec, &[&a, &b, &c], &mut out, &mut scratch, &mut st);
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn stats_counts_are_consistent(
        a in sorted_vec(1000, 200),
        b in sorted_vec(1000, 200),
    ) {
        for kind in IntersectKind::ALL {
            let isec = Intersector::new(kind);
            let mut out = Vec::new();
            let mut st = IntersectStats::default();
            isec.intersect_into(&a, &b, &mut out, &mut st);
            prop_assert_eq!(st.total, 1);
            prop_assert_eq!(st.merge + st.galloping, st.total);
            // The per-tier breakdown partitions the same totals.
            prop_assert_eq!(st.tier_calls.iter().sum::<u64>(), st.total);
            prop_assert_eq!(st.tier_galloping.iter().sum::<u64>(), st.galloping);
        }
    }
}
