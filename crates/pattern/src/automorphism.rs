//! Automorphism enumeration for pattern graphs.
//!
//! `Aut(P)` — matches from `P` to itself (§II-A) — drives symmetry breaking:
//! without constraints, each subgraph of `G` isomorphic to `P` is reported
//! `|Aut(P)|` times. Patterns have at most 16 vertices and the evaluation
//! uses n ≤ 6, so pruned backtracking over permutations is instant.

use crate::small_graph::{PatternGraph, PatternVertex};

/// A permutation of pattern vertices: `perm[v] = image of v`.
pub type Permutation = Vec<PatternVertex>;

/// Enumerate all automorphisms of `p`, identity included, in lexicographic
/// order of the permutation vector.
pub fn automorphisms(p: &PatternGraph) -> Vec<Permutation> {
    let n = p.num_vertices();
    let mut out = Vec::new();
    let mut perm: Vec<PatternVertex> = vec![0; n];
    let mut used = vec![false; n];
    backtrack(p, 0, &mut perm, &mut used, &mut out);
    out
}

fn backtrack(
    p: &PatternGraph,
    depth: usize,
    perm: &mut Vec<PatternVertex>,
    used: &mut Vec<bool>,
    out: &mut Vec<Permutation>,
) {
    let n = p.num_vertices();
    if depth == n {
        out.push(perm.clone());
        return;
    }
    let v = depth as PatternVertex;
    for img in 0..n as PatternVertex {
        if used[img as usize] || p.degree(v) != p.degree(img) {
            continue;
        }
        // Adjacency with all previously mapped vertices must be preserved
        // both ways (automorphisms are edge-preserving bijections on a
        // single graph, hence induced-subgraph-preserving).
        let ok = (0..depth).all(|w| p.has_edge(v, w as PatternVertex) == p.has_edge(img, perm[w]));
        if ok {
            perm[depth] = img;
            used[img as usize] = true;
            backtrack(p, depth + 1, perm, used, out);
            used[img as usize] = false;
        }
    }
}

/// The orbit of `v` under a set of permutations: all images of `v`.
/// Returned as a bitmask.
pub fn orbit(perms: &[Permutation], v: PatternVertex) -> u16 {
    perms.iter().fold(0u16, |m, p| m | (1 << p[v as usize]))
}

/// Restrict a permutation set to the stabilizer of `v` (permutations fixing
/// `v`).
pub fn stabilizer(perms: &[Permutation], v: PatternVertex) -> Vec<Permutation> {
    perms
        .iter()
        .filter(|p| p[v as usize] == v)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_has_six_automorphisms() {
        let t = PatternGraph::complete(3);
        assert_eq!(automorphisms(&t).len(), 6);
    }

    #[test]
    fn clique_automorphisms_are_factorial() {
        assert_eq!(automorphisms(&PatternGraph::complete(4)).len(), 24);
        assert_eq!(automorphisms(&PatternGraph::complete(5)).len(), 120);
    }

    #[test]
    fn square_has_dihedral_group() {
        let sq = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(automorphisms(&sq).len(), 8); // D4
    }

    #[test]
    fn diamond_has_four() {
        let d = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        // Z2 x Z2: swap the degree-3 pair {u0,u2}, swap the degree-2 pair
        // {u1,u3}.
        assert_eq!(automorphisms(&d).len(), 4);
    }

    #[test]
    fn path_has_two() {
        let p = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(automorphisms(&p).len(), 2); // identity + reversal
    }

    #[test]
    fn asymmetric_pattern_has_only_identity() {
        // Smallest asymmetric graph: 6 vertices.
        let g =
            PatternGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (1, 3), (2, 5)]);
        let a = automorphisms(&g);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0], vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn all_results_are_automorphisms() {
        let d = PatternGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        for perm in automorphisms(&d) {
            for (a, b) in d.edges() {
                assert!(d.has_edge(perm[a as usize], perm[b as usize]));
            }
        }
    }

    #[test]
    fn orbit_and_stabilizer() {
        let sq = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let autos = automorphisms(&sq);
        assert_eq!(orbit(&autos, 0), 0b1111); // vertex-transitive
        let stab = stabilizer(&autos, 0);
        assert_eq!(stab.len(), 2); // identity + the reflection fixing 0
        assert_eq!(orbit(&stab, 1), 0b1010); // 1 <-> 3 under the reflection
    }
}
