//! Symmetry-breaking partial orders (Grochow–Kellis [7]).
//!
//! Because of automorphisms, a subgraph of `G` isomorphic to `P` produces
//! `|Aut(P)|` duplicate matches. The fix (§II-A) assigns a partial order `<`
//! to pattern vertices and keeps only matches with `φ(u) < φ(u')` whenever
//! `u < u'`. On the degree-ordered data graph, the comparison is numeric.
//!
//! The construction is the standard one: repeatedly pick the smallest vertex
//! `v` lying in a non-trivial orbit of the remaining automorphism group, emit
//! `v < u` for every other `u` in `v`'s orbit, and restrict the group to the
//! stabilizer of `v`. When only the identity remains, every isomorphic
//! subgraph admits exactly one constrained match.

use crate::automorphism::{automorphisms, orbit, stabilizer, Permutation};
use crate::small_graph::{bits, PatternGraph, PatternVertex};

/// A symmetry-breaking partial order: pairs `(a, b)` meaning the constraint
/// `φ(a) < φ(b)` must hold in every reported match.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartialOrder {
    pairs: Vec<(PatternVertex, PatternVertex)>,
}

impl PartialOrder {
    /// No constraints (used when symmetry breaking is disabled or the
    /// pattern is asymmetric).
    pub fn none() -> Self {
        Self::default()
    }

    /// Build from explicit pairs.
    pub fn from_pairs(pairs: Vec<(PatternVertex, PatternVertex)>) -> Self {
        PartialOrder { pairs }
    }

    /// Derive the partial order for `p` from its automorphism group.
    pub fn for_pattern(p: &PatternGraph) -> Self {
        let mut group: Vec<Permutation> = automorphisms(p);
        let mut pairs = Vec::new();
        while group.len() > 1 {
            // Smallest vertex with a non-trivial orbit.
            let v = p
                .vertices()
                .find(|&v| orbit(&group, v).count_ones() > 1)
                .expect("non-identity group must move some vertex");
            let orb = orbit(&group, v);
            for u in bits(orb) {
                if u != v {
                    pairs.push((v, u));
                }
            }
            group = stabilizer(&group, v);
        }
        PartialOrder { pairs }
    }

    /// The constraint pairs `(a, b)` ⇒ `φ(a) < φ(b)`.
    pub fn pairs(&self) -> &[(PatternVertex, PatternVertex)] {
        &self.pairs
    }

    /// Whether there are no constraints.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Pattern vertices constrained on either side of some pair. The order
    /// optimizer (§VI) prioritizes these when breaking cost ties.
    pub fn constrained_mask(&self) -> u16 {
        self.pairs
            .iter()
            .fold(0u16, |m, &(a, b)| m | (1 << a) | (1 << b))
    }

    /// Constraints `(a, b)` restricted to those where *both* endpoints are
    /// already mapped, expressed per vertex: for vertex `u`, the list of
    /// vertices `w` that must satisfy `φ(w) < φ(u)` (`smaller`), and those
    /// that must satisfy `φ(u) < φ(w)` (`larger`). Engines use this to check
    /// constraints incrementally at bind time.
    pub fn per_vertex(&self, n: usize) -> Vec<VertexConstraints> {
        let mut out = vec![VertexConstraints::default(); n];
        for &(a, b) in &self.pairs {
            // φ(a) < φ(b): when binding b, a must be smaller; when binding
            // a, b must be larger.
            out[b as usize].must_be_larger_than.push(a);
            out[a as usize].must_be_smaller_than.push(b);
        }
        out
    }

    /// Whether the pattern-vertex pair `(a, b)` is constrained as `a < b`.
    pub fn requires_less(&self, a: PatternVertex, b: PatternVertex) -> bool {
        self.pairs.contains(&(a, b))
    }
}

/// Per-vertex view of the partial order (see [`PartialOrder::per_vertex`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VertexConstraints {
    /// Vertices `w` with constraint `φ(w) < φ(self)`.
    pub must_be_larger_than: Vec<PatternVertex>,
    /// Vertices `w` with constraint `φ(self) < φ(w)`.
    pub must_be_smaller_than: Vec<PatternVertex>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Count constrained automorphic images: the number of automorphisms
    /// that map every constraint pair order-consistently when vertices are
    /// assigned distinct values by identity. This equals the duplication
    /// factor that symmetry breaking leaves, and must be 1.
    fn surviving_automorphisms(p: &PatternGraph, po: &PartialOrder) -> usize {
        // Treat a hypothetical match φ as injective with arbitrary distinct
        // images. An automorphism σ yields a duplicate constrained match iff
        // for EVERY total order of images consistent with po, σ also
        // satisfies po. Equivalent check used in the literature: count
        // permutations σ in Aut(P) such that the relabeled constraint set is
        // satisfiable together with the original; for the GK construction it
        // suffices to count σ that fix the constraint system. We instead
        // verify semantically in integration tests against real graphs; here
        // we check the group-theoretic property: iteratively stabilizing
        // constrained vertices kills the group.
        let mut group = automorphisms(p);
        let mut constrained: Vec<PatternVertex> = po.pairs().iter().map(|&(a, _)| a).collect();
        constrained.dedup();
        for v in constrained {
            group = crate::automorphism::stabilizer(&group, v);
        }
        group.len()
    }

    #[test]
    fn asymmetric_pattern_needs_no_constraints() {
        let g =
            PatternGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (1, 3), (2, 5)]);
        let po = PartialOrder::for_pattern(&g);
        assert!(po.is_empty());
    }

    #[test]
    fn triangle_constraints_form_total_order() {
        let t = PatternGraph::complete(3);
        let po = PartialOrder::for_pattern(&t);
        // First round: orbit of 0 = {0,1,2} -> 0<1, 0<2; stabilizer swaps
        // 1,2 -> second round 1<2. Total 3 pairs.
        assert_eq!(po.pairs().len(), 3);
        assert_eq!(surviving_automorphisms(&t, &po), 1);
    }

    #[test]
    fn clique_constraints_total_order() {
        let k5 = PatternGraph::complete(5);
        let po = PartialOrder::for_pattern(&k5);
        assert_eq!(po.pairs().len(), 4 + 3 + 2 + 1);
        assert_eq!(surviving_automorphisms(&k5, &po), 1);
    }

    #[test]
    fn square_constraints_kill_dihedral_group() {
        let sq = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let po = PartialOrder::for_pattern(&sq);
        assert_eq!(surviving_automorphisms(&sq, &po), 1);
    }

    #[test]
    fn diamond_constraints() {
        let d = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let po = PartialOrder::for_pattern(&d);
        // Orbits: {0,2} and {1,3} -> constraints 0<2 and 1<3.
        assert_eq!(po.pairs(), &[(0, 2), (1, 3)]);
        assert_eq!(surviving_automorphisms(&d, &po), 1);
    }

    #[test]
    fn per_vertex_view() {
        let d = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let po = PartialOrder::for_pattern(&d);
        let pv = po.per_vertex(4);
        assert_eq!(pv[2].must_be_larger_than, vec![0]);
        assert_eq!(pv[0].must_be_smaller_than, vec![2]);
        assert_eq!(pv[3].must_be_larger_than, vec![1]);
        assert!(pv[1].must_be_larger_than.is_empty());
    }

    #[test]
    fn constrained_mask() {
        let d = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let po = PartialOrder::for_pattern(&d);
        assert_eq!(po.constrained_mask(), 0b1111);
        assert!(po.requires_less(0, 2));
        assert!(!po.requires_less(2, 0));
    }
}
