//! Dense small-graph type for pattern graphs.

/// Index of a pattern vertex (`u8` is ample: patterns have ≤ 16 vertices).
pub type PatternVertex = u8;

/// Maximum number of pattern vertices supported (bitmask width).
pub const MAX_PATTERN_VERTICES: usize = 16;

/// An undirected unlabeled pattern graph with at most
/// [`MAX_PATTERN_VERTICES`] vertices, stored as per-vertex adjacency
/// bitmasks.
///
/// Vertex sets throughout the planner are `u16` bitmasks over the pattern
/// vertices, which makes vertex-cover / induced-subgraph / subset tests one
/// or two machine instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternGraph {
    n: u8,
    adj: [u16; MAX_PATTERN_VERTICES],
}

impl PatternGraph {
    /// An edgeless pattern on `n` vertices.
    pub fn empty(n: usize) -> Self {
        assert!(
            (1..=MAX_PATTERN_VERTICES).contains(&n),
            "pattern must have 1..={MAX_PATTERN_VERTICES} vertices"
        );
        PatternGraph {
            n: n as u8,
            adj: [0; MAX_PATTERN_VERTICES],
        }
    }

    /// Build from an explicit edge list over vertices `0..n`.
    pub fn from_edges(n: usize, edges: &[(PatternVertex, PatternVertex)]) -> Self {
        let mut g = Self::empty(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// The complete pattern `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut g = Self::empty(n);
        for i in 0..n as PatternVertex {
            for j in (i + 1)..n as PatternVertex {
                g.add_edge(i, j);
            }
        }
        g
    }

    /// Add an undirected edge. Panics on self-loops or out-of-range
    /// vertices: pattern construction errors are programming errors.
    pub fn add_edge(&mut self, a: PatternVertex, b: PatternVertex) {
        assert!(a != b, "pattern graphs are simple (no self-loops)");
        assert!(
            (a as usize) < self.num_vertices() && (b as usize) < self.num_vertices(),
            "edge ({a},{b}) out of range for n={}",
            self.n
        );
        self.adj[a as usize] |= 1 << b;
        self.adj[b as usize] |= 1 << a;
    }

    #[inline]
    /// Number of pattern vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of pattern edges `m`.
    pub fn num_edges(&self) -> usize {
        self.adj[..self.num_vertices()]
            .iter()
            .map(|m| m.count_ones() as usize)
            .sum::<usize>()
            / 2
    }

    #[inline]
    /// Whether the edge `(a, b)` exists.
    pub fn has_edge(&self, a: PatternVertex, b: PatternVertex) -> bool {
        self.adj[a as usize] & (1 << b) != 0
    }

    #[inline]
    /// Degree of `v` within the pattern.
    pub fn degree(&self, v: PatternVertex) -> usize {
        self.adj[v as usize].count_ones() as usize
    }

    /// Neighbors of `v` as a bitmask.
    #[inline]
    pub fn neighbors_mask(&self, v: PatternVertex) -> u16 {
        self.adj[v as usize]
    }

    /// Neighbors of `v` as an iterator of vertices.
    pub fn neighbors(&self, v: PatternVertex) -> impl Iterator<Item = PatternVertex> + '_ {
        BitIter(self.adj[v as usize])
    }

    /// All vertices.
    pub fn vertices(&self) -> impl Iterator<Item = PatternVertex> {
        0..self.n
    }

    /// Bitmask of the full vertex set.
    #[inline]
    pub fn full_mask(&self) -> u16 {
        ((1u32 << self.n) - 1) as u16
    }

    /// Each undirected edge once, `(a, b)` with `a < b`.
    pub fn edges(&self) -> Vec<(PatternVertex, PatternVertex)> {
        let mut out = Vec::with_capacity(self.num_edges());
        for a in self.vertices() {
            for b in self.neighbors(a) {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Whether the subgraph induced on `mask` is connected (the empty mask
    /// and singletons count as connected).
    pub fn is_connected_induced(&self, mask: u16) -> bool {
        if mask == 0 {
            return true;
        }
        let start = mask.trailing_zeros() as usize;
        let mut seen = 1u16 << start;
        let mut frontier = seen;
        while frontier != 0 {
            let mut next = 0u16;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[v] & mask;
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen & mask == mask
    }

    /// Whether the whole pattern is connected.
    pub fn is_connected(&self) -> bool {
        self.is_connected_induced(self.full_mask())
    }

    /// Whether `cover` (a bitmask) is a vertex cover of the subgraph induced
    /// on `within`: every induced edge has at least one endpoint in `cover`.
    /// Used to check Proposition IV.1 on anchor-vertex sets.
    pub fn is_vertex_cover_of_induced(&self, cover: u16, within: u16) -> bool {
        for a in self.vertices() {
            if within & (1 << a) == 0 {
                continue;
            }
            let induced_nbrs = self.adj[a as usize] & within;
            // Edges with both endpoints outside the cover are uncovered.
            if cover & (1 << a) == 0 && induced_nbrs & !cover != 0 {
                return false;
            }
        }
        true
    }

    /// The vertex-induced subgraph on `mask`, with vertices relabeled to
    /// `0..popcount(mask)` in increasing original-ID order. Returns the
    /// subgraph and the mapping `new -> old`.
    pub fn induced(&self, mask: u16) -> (PatternGraph, Vec<PatternVertex>) {
        let old_ids: Vec<PatternVertex> = BitIter(mask).collect();
        let mut sub = PatternGraph::empty(old_ids.len().max(1));
        if old_ids.is_empty() {
            return (sub, old_ids);
        }
        for (new_a, &old_a) in old_ids.iter().enumerate() {
            for (new_b, &old_b) in old_ids.iter().enumerate().skip(new_a + 1) {
                if self.has_edge(old_a, old_b) {
                    sub.add_edge(new_a as PatternVertex, new_b as PatternVertex);
                }
            }
        }
        (sub, old_ids)
    }

    /// Parse a compact edge-list syntax: comma-separated `a-b` pairs, e.g.
    /// `"0-1,1-2,2-0"` for a triangle. The vertex count is
    /// `max endpoint + 1`. Used by the CLI and harness command lines.
    pub fn parse(s: &str) -> Result<PatternGraph, String> {
        let mut edges: Vec<(PatternVertex, PatternVertex)> = Vec::new();
        let mut max_v = 0usize;
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (a, b) = part
                .split_once('-')
                .ok_or_else(|| format!("bad edge {part:?}: expected `a-b`"))?;
            let pa: usize = a
                .trim()
                .parse()
                .map_err(|e| format!("bad vertex {a:?}: {e}"))?;
            let pb: usize = b
                .trim()
                .parse()
                .map_err(|e| format!("bad vertex {b:?}: {e}"))?;
            if pa == pb {
                return Err(format!("self-loop {part:?} not allowed"));
            }
            if pa >= MAX_PATTERN_VERTICES || pb >= MAX_PATTERN_VERTICES {
                return Err(format!(
                    "vertex id in {part:?} exceeds the maximum of {}",
                    MAX_PATTERN_VERTICES - 1
                ));
            }
            max_v = max_v.max(pa).max(pb);
            edges.push((pa as PatternVertex, pb as PatternVertex));
        }
        if edges.is_empty() {
            return Err("pattern needs at least one edge".into());
        }
        Ok(PatternGraph::from_edges(max_v + 1, &edges))
    }

    /// Backward neighbors `N+^π(u)` of `u` under enumeration order `π`
    /// (Definition II.3): neighbors of `u` positioned before `u` in `π`.
    /// Returned as a bitmask of pattern vertices.
    pub fn backward_neighbors(&self, pi: &[PatternVertex], u_pos: usize) -> u16 {
        let u = pi[u_pos];
        let before: u16 = pi[..u_pos].iter().fold(0, |m, &w| m | (1 << w));
        self.adj[u as usize] & before
    }

    /// Whether `π` is a *connected enumeration order*: every vertex except
    /// the first has at least one backward neighbor (§II-A).
    pub fn is_connected_order(&self, pi: &[PatternVertex]) -> bool {
        pi.len() == self.num_vertices()
            && (1..pi.len()).all(|i| self.backward_neighbors(pi, i) != 0)
    }
}

/// Iterator over set bits of a `u16`, yielding bit positions.
struct BitIter(u16);

impl Iterator for BitIter {
    type Item = PatternVertex;
    #[inline]
    fn next(&mut self) -> Option<PatternVertex> {
        if self.0 == 0 {
            None
        } else {
            let v = self.0.trailing_zeros() as PatternVertex;
            self.0 &= self.0 - 1;
            Some(v)
        }
    }
}

/// Iterate the set bits of any mask (exposed for planner code).
pub fn bits(mask: u16) -> impl Iterator<Item = PatternVertex> {
    BitIter(mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> PatternGraph {
        // Fig. 1a: square u0-u1-u2-u3 + chord u0-u2.
        PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 5);
        assert!(g.has_edge(0, 2) && g.has_edge(2, 0));
        assert!(!g.has_edge(1, 3));
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.degree(1), 2);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![1, 2, 3]);
    }

    #[test]
    fn edges_listing() {
        let g = diamond();
        assert_eq!(g.edges(), vec![(0, 1), (0, 2), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn connectivity() {
        let g = diamond();
        assert!(g.is_connected());
        // {u1, u3} induces no edges -> disconnected (2 components).
        assert!(!g.is_connected_induced(0b1010));
        // {u0, u2} induces the chord -> connected.
        assert!(g.is_connected_induced(0b0101));
        // Singleton and empty are connected.
        assert!(g.is_connected_induced(0b0001));
        assert!(g.is_connected_induced(0));
    }

    #[test]
    fn vertex_cover() {
        let g = diamond();
        // {u0, u2} covers all 5 edges.
        assert!(g.is_vertex_cover_of_induced(0b0101, g.full_mask()));
        // {u1, u3} leaves edge (u0,u2) uncovered.
        assert!(!g.is_vertex_cover_of_induced(0b1010, g.full_mask()));
        // Within {u0,u1,u2}: {u0} misses edge (u1,u2); {u0,u1} covers.
        assert!(!g.is_vertex_cover_of_induced(0b0001, 0b0111));
        assert!(g.is_vertex_cover_of_induced(0b0011, 0b0111));
    }

    #[test]
    fn induced_subgraph() {
        let g = diamond();
        let (sub, ids) = g.induced(0b0111); // {u0, u1, u2} -> triangle
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        let (sub2, ids2) = g.induced(0b1010); // {u1, u3} -> no edges
        assert_eq!(ids2, vec![1, 3]);
        assert_eq!(sub2.num_edges(), 0);
    }

    #[test]
    fn backward_neighbors_match_example() {
        // Example I.1: π = (u0, u2, u1, u3); N+(u1) = {u0, u2},
        // N+(u3) = {u0, u2}.
        let g = diamond();
        let pi = [0, 2, 1, 3];
        assert_eq!(g.backward_neighbors(&pi, 2), 0b0101);
        assert_eq!(g.backward_neighbors(&pi, 3), 0b0101);
        assert_eq!(g.backward_neighbors(&pi, 1), 0b0001); // N+(u2)={u0}
        assert_eq!(g.backward_neighbors(&pi, 0), 0);
        assert!(g.is_connected_order(&pi));
    }

    #[test]
    fn disconnected_order_detected() {
        // Path 0-1-2-3: order (0, 3, ...) is not connected at position 1.
        let p = PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert!(!p.is_connected_order(&[0, 3, 1, 2]));
        assert!(p.is_connected_order(&[1, 0, 2, 3]));
    }

    #[test]
    fn complete_pattern() {
        let k5 = PatternGraph::complete(5);
        assert_eq!(k5.num_edges(), 10);
        assert!(k5.is_connected());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = PatternGraph::empty(3);
        g.add_edge(1, 1);
    }

    #[test]
    fn bits_helper() {
        let got: Vec<_> = bits(0b1011).collect();
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn parse_triangle() {
        let p = PatternGraph::parse("0-1,1-2,2-0").unwrap();
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.num_edges(), 3);
        assert_eq!(p, PatternGraph::complete(3));
    }

    #[test]
    fn parse_with_whitespace() {
        let p = PatternGraph::parse(" 0-1 , 1-2 ").unwrap();
        assert_eq!(p.num_vertices(), 3);
        assert_eq!(p.num_edges(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(PatternGraph::parse("").is_err());
        assert!(PatternGraph::parse("0").is_err());
        assert!(PatternGraph::parse("0-0").is_err());
        assert!(PatternGraph::parse("0-x").is_err());
        assert!(PatternGraph::parse("0-99").is_err());
    }
}
