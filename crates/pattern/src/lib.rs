#![warn(missing_docs)]

//! # light-pattern — pattern-graph substrate for the LIGHT reproduction
//!
//! Pattern graphs `P` in this paper are tiny (n = 4–6, the code supports up
//! to 16), unlabeled, undirected, and connected. This crate provides:
//!
//! * [`PatternGraph`] — a dense small-graph type with per-vertex adjacency
//!   bitmasks, supporting the vertex-induced-subgraph and vertex-cover
//!   queries the planner needs (Definitions II.2–II.5, Proposition IV.1).
//! * [`automorphism`] — enumeration of `Aut(P)` by pruned backtracking.
//! * [`symmetry`] — symmetry-breaking partial orders à la Grochow–Kellis
//!   [7]: a set of constraints `φ(u) < φ(u')` such that each subgraph of
//!   `G` isomorphic to `P` yields exactly one constrained match.
//! * [`catalog`] — the query set P1–P7 (Fig. 3, reconstructed from the
//!   paper's textual constraints; see DESIGN.md §3) plus small fixtures.
//!
//! ```
//! use light_pattern::{PatternGraph, Query};
//!
//! let diamond = Query::P2.pattern(); // the running example of Fig. 1a
//! assert_eq!(diamond.num_vertices(), 4);
//! assert_eq!(diamond.num_edges(), 5);
//! assert!(diamond.is_connected());
//!
//! let autos = light_pattern::automorphism::automorphisms(&diamond);
//! assert_eq!(autos.len(), 4); // identity, u1<->u3, u0<->u2, both
//! ```

pub mod automorphism;
pub mod catalog;
pub mod small_graph;
pub mod symmetry;

pub use catalog::Query;
pub use small_graph::{PatternGraph, PatternVertex, MAX_PATTERN_VERTICES};
pub use symmetry::PartialOrder;
