//! The query-pattern catalog of the paper's evaluation (Fig. 3).
//!
//! The paper evaluates seven patterns P1–P7 taken from SEED [13] with
//! n ∈ [4, 6] and m ∈ [4, 10]. The figure itself is not recoverable from
//! text, so the catalog reconstructs a set consistent with every textual
//! constraint (see DESIGN.md §3 for the evidence per pattern):
//!
//! * P2 is the running example (Fig. 1a): the *diamond*.
//! * P4 is the *house* (EH splits it into a square and a triangle sharing
//!   the wall edge, matching §VIII-B1's description of P4' and P4'').
//! * P5 is the unique 6-vertex query (Table V: "P5 has more vertices than
//!   the other pattern graphs").
//! * P6 is a 5-vertex, 8-edge pattern (MSC reduces per-path intersections
//!   from 4 to 2, which forces m − (n−1) = 4).

use crate::small_graph::PatternGraph;
use crate::symmetry::PartialOrder;

/// A named query pattern from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Square (4-cycle): n=4, m=4.
    P1,
    /// Diamond (square + one chord), the running example of Fig. 1: n=4, m=5.
    P2,
    /// 4-clique: n=4, m=6.
    P3,
    /// House (square + triangle sharing an edge): n=5, m=6.
    P4,
    /// Double square (two squares sharing an edge): n=6, m=7.
    P5,
    /// 4-clique plus a pendant triangle vertex (adjacent to u0, u1):
    /// n=5, m=8.
    P6,
    /// 5-clique: n=5, m=10.
    P7,
    /// Triangle — not part of Fig. 3, but used in examples and tests.
    Triangle,
}

impl Query {
    /// The seven evaluation patterns in Fig. 3 order.
    pub const ALL: [Query; 7] = [
        Query::P1,
        Query::P2,
        Query::P3,
        Query::P4,
        Query::P5,
        Query::P6,
        Query::P7,
    ];

    /// Short name as used in the paper ("P1".."P7").
    pub fn name(self) -> &'static str {
        match self {
            Query::P1 => "P1",
            Query::P2 => "P2",
            Query::P3 => "P3",
            Query::P4 => "P4",
            Query::P5 => "P5",
            Query::P6 => "P6",
            Query::P7 => "P7",
            Query::Triangle => "triangle",
        }
    }

    /// Human-readable shape description.
    pub fn shape(self) -> &'static str {
        match self {
            Query::P1 => "square (4-cycle)",
            Query::P2 => "diamond (square + chord)",
            Query::P3 => "4-clique",
            Query::P4 => "house (square + triangle)",
            Query::P5 => "double square",
            Query::P6 => "4-clique + pendant triangle vertex",
            Query::P7 => "5-clique",
            Query::Triangle => "triangle",
        }
    }

    /// Build the pattern graph.
    pub fn pattern(self) -> PatternGraph {
        match self {
            Query::P1 => PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
            Query::P2 => PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
            Query::P3 => PatternGraph::complete(4),
            Query::P4 => PatternGraph::from_edges(
                5,
                // Square u0-u1-u4-u3 + triangle u0-u2-u3 sharing wall (u0,u3):
                // P4' = {u0,u1,u3,u4} induces the square,
                // P4'' = {u0,u2,u3} induces the triangle (cf. §VIII-B1).
                &[(0, 1), (1, 4), (4, 3), (3, 0), (0, 2), (2, 3)],
            ),
            Query::P5 => PatternGraph::from_edges(
                6,
                // Two squares sharing edge (u2,u3).
                &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5), (5, 2)],
            ),
            Query::P6 => PatternGraph::from_edges(
                5,
                // 4-clique on {u0..u3} plus u4 adjacent to u0 and u1.
                // Forced by §VIII-B1: EH splits P6 into P6' = {u0,u1,u2,u3}
                // and P6'' = {u0,u1,u4}, whose induced edges must cover
                // E(P6); and MSC reduces per-path intersections from 4 to 2,
                // which requires m − (n−1) = 4 ⇒ m = 8.
                &[
                    (0, 1),
                    (0, 2),
                    (0, 3),
                    (1, 2),
                    (1, 3),
                    (2, 3),
                    (0, 4),
                    (1, 4),
                ],
            ),
            Query::P7 => PatternGraph::complete(5),
            Query::Triangle => PatternGraph::complete(3),
        }
    }

    /// The symmetry-breaking partial order for this pattern (derived from
    /// its automorphism group; the paper lists these under each pattern in
    /// Fig. 3).
    pub fn partial_order(self) -> PartialOrder {
        PartialOrder::for_pattern(&self.pattern())
    }

    /// Parse a query name as used on harness command lines ("P1".."P7",
    /// case-insensitive, or "triangle").
    pub fn parse(s: &str) -> Option<Query> {
        match s.to_ascii_lowercase().as_str() {
            "p1" => Some(Query::P1),
            "p2" => Some(Query::P2),
            "p3" => Some(Query::P3),
            "p4" => Some(Query::P4),
            "p5" => Some(Query::P5),
            "p6" => Some(Query::P6),
            "p7" => Some(Query::P7),
            "triangle" | "k3" => Some(Query::Triangle),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automorphism::automorphisms;

    #[test]
    fn catalog_matches_paper_size_bounds() {
        // "n varies from 4 to 6, and m varies from 4 to 10" (§VIII-A).
        for q in Query::ALL {
            let p = q.pattern();
            assert!(
                (4..=6).contains(&p.num_vertices()),
                "{}: n={}",
                q.name(),
                p.num_vertices()
            );
            assert!(
                (4..=10).contains(&p.num_edges()),
                "{}: m={}",
                q.name(),
                p.num_edges()
            );
            assert!(p.is_connected(), "{} disconnected", q.name());
        }
    }

    #[test]
    fn expected_sizes() {
        let sizes: Vec<(usize, usize)> = Query::ALL
            .iter()
            .map(|q| {
                let p = q.pattern();
                (p.num_vertices(), p.num_edges())
            })
            .collect();
        assert_eq!(
            sizes,
            vec![(4, 4), (4, 5), (4, 6), (5, 6), (6, 7), (5, 8), (5, 10)]
        );
    }

    #[test]
    fn p5_is_the_unique_six_vertex_query() {
        let six: Vec<_> = Query::ALL
            .iter()
            .filter(|q| q.pattern().num_vertices() == 6)
            .collect();
        assert_eq!(six.len(), 1);
        assert_eq!(*six[0], Query::P5);
    }

    #[test]
    fn p4_decomposes_as_paper_describes() {
        // EH splits P4 into P4' = {u0,u1,u3,u4} (a square) and
        // P4'' = {u0,u2,u3} (a triangle).
        let p4 = Query::P4.pattern();
        let (sq, _) = p4.induced(0b11011);
        assert_eq!(sq.num_vertices(), 4);
        assert_eq!(sq.num_edges(), 4);
        assert_eq!(automorphisms(&sq).len(), 8); // it's a 4-cycle
        let (tri, _) = p4.induced(0b01101);
        assert_eq!(tri.num_edges(), 3); // it's a triangle
    }

    #[test]
    fn automorphism_counts() {
        assert_eq!(automorphisms(&Query::P1.pattern()).len(), 8);
        assert_eq!(automorphisms(&Query::P2.pattern()).len(), 4);
        assert_eq!(automorphisms(&Query::P3.pattern()).len(), 24);
        assert_eq!(automorphisms(&Query::P4.pattern()).len(), 2);
        assert_eq!(automorphisms(&Query::P5.pattern()).len(), 4);
        assert_eq!(automorphisms(&Query::P7.pattern()).len(), 120);
    }

    #[test]
    fn p6_structure() {
        // 4-clique {u0..u3} + u4 attached to the edge (u0, u1).
        let p6 = Query::P6.pattern();
        let (k4, _) = p6.induced(0b01111);
        assert_eq!(k4.num_edges(), 6);
        assert_eq!(p6.degree(4), 2);
        assert!(p6.has_edge(4, 0) && p6.has_edge(4, 1));
        // EH's split P6'' = {u0, u1, u4} is a triangle.
        let (tri, _) = p6.induced(0b10011);
        assert_eq!(tri.num_edges(), 3);
        // The two components' induced edges cover E(P6).
        assert_eq!(k4.num_edges() + 2, p6.num_edges());
    }

    #[test]
    fn p6_msc_constraint_from_paper() {
        // §VIII-B1: per-path intersections 4 (SE) -> requires m-(n-1) = 4.
        let p6 = Query::P6.pattern();
        assert_eq!(p6.num_edges() - (p6.num_vertices() - 1), 4);
    }

    #[test]
    fn parse_roundtrip() {
        for q in Query::ALL {
            assert_eq!(Query::parse(q.name()), Some(q));
            assert_eq!(Query::parse(&q.name().to_lowercase()), Some(q));
        }
        assert_eq!(Query::parse("triangle"), Some(Query::Triangle));
        assert_eq!(Query::parse("bogus"), None);
    }

    #[test]
    fn partial_orders_exist_for_symmetric_patterns() {
        for q in Query::ALL {
            let po = q.partial_order();
            let n_autos = automorphisms(&q.pattern()).len();
            if n_autos > 1 {
                assert!(
                    !po.is_empty(),
                    "{} has symmetry but no constraints",
                    q.name()
                );
            }
        }
    }
}
