//! Property tests for the pattern substrate: automorphism group laws and
//! symmetry-breaking invariants over random small patterns.

use proptest::prelude::*;

use light_pattern::automorphism::{automorphisms, orbit, stabilizer};
use light_pattern::{PartialOrder, PatternGraph};

/// Random connected pattern on 3..=6 vertices: a random spanning tree plus
/// random extra edges.
fn connected_pattern() -> impl Strategy<Value = PatternGraph> {
    (3usize..=6).prop_flat_map(|n| {
        let tree_choices = proptest::collection::vec(0usize..100, n - 1);
        let extra = proptest::collection::vec((0u8..n as u8, 0u8..n as u8), 0..6);
        (Just(n), tree_choices, extra).prop_map(|(n, tree, extra)| {
            let mut p = PatternGraph::empty(n);
            for (i, r) in tree.iter().enumerate() {
                let child = (i + 1) as u8;
                let parent = (r % (i + 1)) as u8;
                p.add_edge(child, parent);
            }
            for (a, b) in extra {
                if a != b {
                    p.add_edge(a, b);
                }
            }
            p
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn automorphisms_form_a_group(p in connected_pattern()) {
        let autos = automorphisms(&p);
        let n = p.num_vertices();
        // Contains identity.
        let id: Vec<u8> = (0..n as u8).collect();
        prop_assert!(autos.contains(&id));
        // Closed under composition and inverse (checked via membership).
        let contains = |perm: &Vec<u8>| autos.contains(perm);
        for a in &autos {
            for b in &autos {
                let comp: Vec<u8> = (0..n).map(|i| a[b[i] as usize]).collect();
                prop_assert!(contains(&comp), "not closed under composition");
            }
            let mut inv = vec![0u8; n];
            for (i, &img) in a.iter().enumerate() {
                inv[img as usize] = i as u8;
            }
            prop_assert!(contains(&inv), "not closed under inverse");
        }
        // Group order divides n! (Lagrange).
        let fact: usize = (1..=n).product();
        prop_assert_eq!(fact % autos.len(), 0);
    }

    #[test]
    fn automorphisms_preserve_edges(p in connected_pattern()) {
        for a in automorphisms(&p) {
            for (x, y) in p.edges() {
                prop_assert!(p.has_edge(a[x as usize], a[y as usize]));
            }
        }
    }

    #[test]
    fn stabilizer_chain_reaches_identity(p in connected_pattern()) {
        // Iteratively stabilizing the constrained vertices of the GK
        // partial order must kill the whole group — the correctness
        // condition for exactly-once reporting.
        let po = PartialOrder::for_pattern(&p);
        let mut group = automorphisms(&p);
        let mut firsts: Vec<u8> = po.pairs().iter().map(|&(a, _)| a).collect();
        firsts.dedup();
        for v in firsts {
            group = stabilizer(&group, v);
        }
        prop_assert_eq!(group.len(), 1, "constraints leave residual symmetry");
    }

    #[test]
    fn partial_order_is_acyclic(p in connected_pattern()) {
        // The GK pairs must admit a topological order (no a<b<...<a).
        let po = PartialOrder::for_pattern(&p);
        let n = p.num_vertices();
        let mut indeg = vec![0usize; n];
        for &(_, b) in po.pairs() {
            indeg[b as usize] += 1;
        }
        let mut removed = 0;
        let mut queue: Vec<u8> = (0..n as u8).filter(|&v| indeg[v as usize] == 0).collect();
        let mut pairs: Vec<(u8, u8)> = po.pairs().to_vec();
        while let Some(v) = queue.pop() {
            removed += 1;
            pairs.retain(|&(a, b)| {
                if a == v {
                    indeg[b as usize] -= 1;
                    if indeg[b as usize] == 0 {
                        queue.push(b);
                    }
                    false
                } else {
                    true
                }
            });
        }
        prop_assert_eq!(removed, n, "cycle in partial order");
    }

    #[test]
    fn orbits_partition_under_full_group(p in connected_pattern()) {
        let autos = automorphisms(&p);
        // v is always in its own orbit, and orbit relation is symmetric.
        for v in p.vertices() {
            let ov = orbit(&autos, v);
            prop_assert!(ov & (1 << v) != 0);
            for w in p.vertices() {
                if ov & (1 << w) != 0 {
                    prop_assert!(orbit(&autos, w) & (1 << v) != 0);
                }
            }
        }
    }

    #[test]
    fn induced_subgraph_edge_counts(p in connected_pattern(), mask_seed in 0u16..64) {
        let mask = mask_seed & p.full_mask();
        let (sub, ids) = p.induced(mask);
        if ids.is_empty() {
            return Ok(());
        }
        prop_assert_eq!(sub.num_vertices(), ids.len());
        let mut expect = 0;
        for (i, &a) in ids.iter().enumerate() {
            for &b in &ids[i + 1..] {
                if p.has_edge(a, b) {
                    expect += 1;
                }
            }
        }
        prop_assert_eq!(sub.num_edges(), expect);
    }
}
