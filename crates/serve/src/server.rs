//! Transports and drain orchestration for the resident daemon.
//!
//! Two transports share one [`QueryService`]:
//!
//! * **stdio** — request lines on stdin, response lines on stdout; EOF
//!   drains. The mode golden tests and shell pipelines use.
//! * **Unix domain socket** — `--socket <path>`, dependency-free via
//!   `std::os::unix::net`. Each connection gets a handler thread running
//!   the same line loop; the accept loop polls non-blockingly so a drain
//!   can stop it promptly.
//!
//! Drain protocol (SIGINT or a `shutdown` request): stop accepting
//! connections, answer new queries with a `draining` error, let running
//! and queued queries finish, cancel whatever outlives the grace period,
//! join every handler, remove the socket file. [`drain`] returns only when
//! the service is quiescent, so the process can exit 0.

use std::io::{self, BufRead, BufReader, Write};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::MAX_REQUEST_BYTES;
use crate::service::QueryService;

/// How often blocked loops (accept, connection read) wake to check the
/// drain flag.
pub const POLL_PERIOD: Duration = Duration::from_millis(100);

/// Reading one request line off a connection can end several ways.
enum LineRead {
    /// A complete line is in the buffer.
    Line,
    /// Clean end of stream with nothing buffered.
    Eof,
    /// The peer overflowed [`MAX_REQUEST_BYTES`]; answer-and-hang-up.
    Oversized,
    /// The service started draining while the connection was idle.
    Drained,
    /// Hard connection error.
    Closed,
}

/// Read one `\n`-terminated line into `buf` (which is cleared first).
///
/// Tolerates `WouldBlock`/`TimedOut` ticks from sockets with a read
/// timeout — those poll `service` for a drain (which abandons the
/// connection even mid-line: an incomplete line is not a submitted
/// request, so dropping it keeps one-response-per-request) and enforce
/// the partial-line idle timeout: a slowloris client that starts a line
/// and stalls is hung up on after `idle_timeout`, while *fully* idle
/// connections (no bytes buffered) wait as long as they like.
/// `service = None` (stdio/tests) treats timeouts as stream errors.
fn read_line(r: &mut impl BufRead, buf: &mut Vec<u8>, service: Option<&QueryService>) -> LineRead {
    buf.clear();
    // Deadline anchor for the partial-line timeout. Deliberately not
    // reset on progress: trickling one byte per tick must not extend the
    // deadline forever.
    let mut partial_since: Option<Instant> = None;
    loop {
        match r.read_until(b'\n', buf) {
            Ok(0) => {
                // EOF; a final unterminated line still gets served.
                return if buf.is_empty() {
                    LineRead::Eof
                } else {
                    LineRead::Line
                };
            }
            Ok(_) => {
                if buf.len() > MAX_REQUEST_BYTES {
                    return LineRead::Oversized;
                }
                if buf.last() == Some(&b'\n') {
                    return LineRead::Line;
                }
                // Short read mid-line; keep accumulating.
                partial_since.get_or_insert_with(Instant::now);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                match service {
                    Some(s) if s.is_draining() => return LineRead::Drained,
                    Some(s) => {
                        if !buf.is_empty() {
                            let since = *partial_since.get_or_insert_with(Instant::now);
                            if let Some(limit) = s.config().idle_timeout {
                                if since.elapsed() >= limit {
                                    return LineRead::Closed;
                                }
                            }
                        }
                    }
                    None => return LineRead::Closed,
                }
            }
            Err(_) => return LineRead::Closed,
        }
    }
}

/// Serve one connection: read request lines, write one response line each.
/// Returns on EOF, on a hard stream error, or — for socket connections
/// with `poll_drain` — when a drain begins while the connection is idle.
/// Generic over the stream so tests can drive it with byte buffers.
pub fn serve_connection<R: BufRead, W: Write>(
    service: &QueryService,
    mut reader: R,
    mut writer: W,
    poll_drain: bool,
) -> io::Result<()> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        match read_line(&mut reader, &mut buf, poll_drain.then_some(service)) {
            LineRead::Eof | LineRead::Closed | LineRead::Drained => return Ok(()),
            LineRead::Oversized => {
                // parse_request owns the length policy; routing the
                // oversized line through handle_line keeps the typed
                // error and the error counter in one place.
                let resp = service.handle_line(&String::from_utf8_lossy(&buf));
                writeln_flush(&mut writer, &resp)?;
                return Ok(()); // stream position unrecoverable mid-line
            }
            LineRead::Line => {
                let line = String::from_utf8_lossy(&buf);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let resp = service.handle_line(line);
                writeln_flush(&mut writer, &resp)?;
            }
        }
    }
}

fn writeln_flush<W: Write>(w: &mut W, line: &str) -> io::Result<()> {
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

/// Serve stdin/stdout until EOF. The CLI treats stdin EOF as a drain
/// request on stdio-only daemons.
pub fn serve_stdio(service: &QueryService) -> io::Result<()> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    serve_connection(service, stdin.lock(), stdout.lock(), false)
}

/// A running Unix-socket listener.
pub struct SocketServer {
    /// Accept-loop thread; joins (with all handlers) after a drain.
    accept: JoinHandle<io::Result<()>>,
    path: std::path::PathBuf,
}

impl SocketServer {
    /// Bind `path` (replacing a stale socket file) and start accepting.
    /// Refuses to displace a *live* daemon (detected by connecting).
    pub fn bind(
        service: Arc<QueryService>,
        path: impl Into<std::path::PathBuf>,
    ) -> io::Result<SocketServer> {
        let path = path.into();
        let listener = bind_uds(&path)?;
        let spath = path.clone();
        let accept = std::thread::Builder::new()
            .name("light-serve-accept".into())
            .spawn(move || accept_loop(service, listener, spath))?;
        Ok(SocketServer { accept, path })
    }

    /// The socket path being served.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Wait for the accept loop and every connection handler to finish.
    /// Only returns after a drain has been signalled on the service.
    pub fn join(self) -> io::Result<()> {
        match self.accept.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("accept loop panicked")),
        }
    }
}

/// Bind a Unix socket listener at `path`, replacing a stale socket file
/// but refusing to displace a *live* daemon (detected by connecting).
/// Both transports (thread-per-connection and the epoll reactor) start
/// here. The listener is returned in non-blocking mode.
pub(crate) fn bind_uds(path: &std::path::Path) -> io::Result<std::os::unix::net::UnixListener> {
    if path.exists() {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(_) => {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("another daemon is live on {}", path.display()),
                ))
            }
            // Stale socket file from a dead daemon; safe to replace.
            Err(_) => std::fs::remove_file(path)?,
        }
    }
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// Smallest / largest throttle after a transient `accept(2)` failure.
/// Doubles from MIN to MAX while failures persist, resets on success —
/// an EMFILE burst backs off instead of spinning a log line every
/// [`POLL_PERIOD`] forever.
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(640);

/// Whether an `accept(2)` failure is transient (resource pressure, or a
/// connection that died in the backlog) or fatal (the listener itself is
/// broken — closed fd, bad address). Transient failures are retried with
/// capped backoff; fatal ones end the accept loop *with the error*, so a
/// daemon whose listener dies exits loudly instead of looping on a dead
/// socket while clients hang.
pub(crate) fn accept_error_is_transient(e: &io::Error) -> bool {
    if matches!(
        e.kind(),
        io::ErrorKind::WouldBlock
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
    ) {
        return true;
    }
    // Resource exhaustion has no stable ErrorKind; match the errno:
    // ENOMEM, ENFILE, EMFILE, ENOBUFS.
    matches!(e.raw_os_error(), Some(12 | 23 | 24 | 105))
}

fn accept_loop(
    service: Arc<QueryService>,
    listener: std::os::unix::net::UnixListener,
    path: std::path::PathBuf,
) -> io::Result<()> {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    let mut backoff = ACCEPT_BACKOFF_MIN;
    let mut fatal: io::Result<()> = Ok(());
    while !service.is_draining() {
        match listener.accept() {
            Ok((stream, _addr)) => {
                backoff = ACCEPT_BACKOFF_MIN;
                let svc = Arc::clone(&service);
                // Blocking reads with a poll timeout: handlers notice a
                // drain within POLL_PERIOD even on idle connections.
                stream.set_nonblocking(false)?;
                stream.set_read_timeout(Some(POLL_PERIOD))?;
                let h = std::thread::Builder::new()
                    .name("light-serve-conn".into())
                    .spawn(move || handle_socket_conn(&svc, stream))?;
                handlers.push(h);
                handlers.retain(|h| !h.is_finished());
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle: poll the drain flag at the usual period.
                std::thread::sleep(POLL_PERIOD);
            }
            Err(e) if accept_error_is_transient(&e) => {
                eprintln!("serve: transient accept error: {e}");
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
            }
            Err(e) => {
                eprintln!("serve: fatal accept error: {e}");
                fatal = Err(e);
                break;
            }
        }
    }
    drop(listener);
    std::fs::remove_file(&path).ok();
    // Existing connections finish their work even when the listener died.
    for h in handlers {
        h.join().ok();
    }
    fatal
}

fn handle_socket_conn(service: &QueryService, stream: std::os::unix::net::UnixStream) {
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(e) => {
            eprintln!("serve: cannot clone connection stream: {e}");
            return;
        }
    };
    // Write errors just end the connection; the client went away.
    let _ = serve_connection(service, reader, stream, true);
}

/// Statistics of a completed drain, for the exit log line.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// In-flight queries when the drain began.
    pub in_flight_at_start: usize,
    /// Queries force-cancelled at grace expiry (0 on a clean drain).
    pub cancelled: usize,
    /// Wall time the drain took.
    pub elapsed: Duration,
}

/// Block until every in-flight and queued query has finished, cancelling
/// whatever outlives the service's drain grace. Call after the shutdown
/// token fires; transports stop themselves by polling the same token.
pub fn drain(service: &QueryService) -> DrainReport {
    let start = Instant::now();
    let grace = service.config().drain_grace;
    let at_start = service.snapshot();
    let mut cancelled = 0usize;
    loop {
        let snap = service.snapshot();
        if snap.in_flight == 0 && snap.queued == 0 {
            break;
        }
        if start.elapsed() > grace {
            // Every tick, not once: queries admitted from the queue after
            // the first sweep must be cancelled too. Token cancellation is
            // idempotent.
            let n = service.cancel_in_flight();
            if n > 0 && cancelled == 0 {
                eprintln!(
                    "serve: drain grace ({grace:?}) expired; cancelling {n} in-flight quer{}",
                    if n == 1 { "y" } else { "ies" }
                );
            }
            cancelled = cancelled.max(n);
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    DrainReport {
        in_flight_at_start: at_start.in_flight,
        cancelled,
        elapsed: start.elapsed(),
    }
}
