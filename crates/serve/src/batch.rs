//! The multi-query batch gate: shared-pass execution for concurrent
//! queries on the same graph (DESIGN.md §16).
//!
//! A serving daemon under load sees overlapping queries — often the same
//! handful of patterns — arrive within microseconds of each other. Run
//! independently, each pays the full cost of walking the data graph even
//! where their enumeration trees coincide. The gate sits *behind*
//! admission (every member holds its own permit, deadline, and cancel
//! token): the first admitted query on a graph becomes the batch
//! **leader** and waits one collection window; queries admitted for the
//! same graph meanwhile join as **followers**. The leader then compiles
//! every member plan into one [`MultiPlan`] prefix trie and runs a single
//! [`run_multi_parallel`] pass that emits per-member counts — one walk
//! over the shared plan prefix answers all of them.
//!
//! Fallbacks are first-class: a window with no second arrival, a plan set
//! the trie refuses (> [`MAX_MULTI_MEMBERS`]), or a compile failure all
//! resolve to [`BatchVerdict::Solo`] — the member runs the ordinary
//! single-query path, and the `fallbacks`/`singletons` counters say how
//! often. The `LIGHT_MQO=0` environment kill-switch and
//! `--batch-window-ms 0` disable the gate entirely.
//!
//! ## Containment
//!
//! A leader panic between collection and distribution would strand
//! followers on the condvar, so the whole compile-and-run sequence runs
//! under `catch_unwind`: on a panic every member (leader included) gets a
//! typed per-member error result, the group is marked done, and followers
//! wake normally. The per-member finalize step carries the
//! `serve::batch_member` failpoint under its own `catch_unwind`, so chaos
//! tests can kill exactly one member of a live batch and assert the
//! siblings still answer with exact counts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use light_core::{CancelToken, EngineConfig, Outcome};
use light_graph::CsrGraph;
use light_order::{MultiPlan, QueryPlan, MAX_MULTI_MEMBERS};
use light_parallel::{run_multi_parallel, ParallelConfig};

use crate::service::lock_recover;

/// One query's stake in a batch: everything the leader needs to execute
/// it as a member of the shared pass.
pub struct MemberExec {
    /// The member's compiled single-query plan (from the plan cache).
    pub plan: Arc<QueryPlan>,
    /// Remaining time budget (already capped by the daemon default).
    pub time_budget: Option<Duration>,
    /// The member's own cancel token (drain-grace kills stay per-query).
    pub cancel: CancelToken,
    /// Worker threads the member asked for (the batch runs on the max).
    pub threads: usize,
}

/// What one member gets back from a shared pass.
#[derive(Debug, Clone)]
pub struct MemberOutput {
    /// Matches counted for this member's pattern.
    pub matches: u64,
    /// How this member's enumeration ended.
    pub outcome: Outcome,
    /// Wall time of the shared pass (identical for all members).
    pub elapsed: Duration,
    /// Contained worker panics during the pass (shared by all members).
    pub failures: u64,
    /// Batch size, for the `batch` response field.
    pub members: usize,
    /// Whether this member is the batch leader (records exec time once).
    pub leader: bool,
}

/// How a member leaves the gate.
pub enum BatchVerdict {
    /// The shared pass ran; `Err` carries a contained panic message that
    /// the caller renders as a typed per-member `internal_error`.
    Ran(Result<MemberOutput, String>),
    /// No batch formed (singleton window, compile fallback, stalled
    /// leader): run the ordinary single-query path.
    Solo,
}

/// A member's handle on its group.
pub enum Ticket {
    /// First member in the window: sleeps it out, then executes.
    Leader(Arc<Group>),
    /// Joined an open window: waits for the leader's verdict. The index
    /// is the member's position in the group (and in the multi-plan).
    Follower(Arc<Group>, usize),
}

struct GroupState {
    /// Accepting joiners. Closed by the leader at window end.
    open: bool,
    members: Vec<MemberExec>,
    /// Verdict published. Guarded by `done` so spurious wakeups are safe.
    done: bool,
    /// The leader chose not to run a shared pass: everyone goes solo.
    fallback: bool,
    results: Vec<Option<Result<MemberOutput, String>>>,
}

/// One collection window's worth of queries on one graph.
pub struct Group {
    state: Mutex<GroupState>,
    cv: Condvar,
}

/// Counters for the `multiquery` stats section. All monotone.
#[derive(Debug, Default)]
pub struct MultiQueryMetrics {
    /// Shared passes executed (≥ 2 members each).
    pub batches: AtomicU64,
    /// Members across all shared passes.
    pub batched_members: AtomicU64,
    /// Windows that closed with a single member (ran solo).
    pub singletons: AtomicU64,
    /// Members sent solo by a compile failure or an over-full trie.
    pub fallbacks: AtomicU64,
    /// Histogram of per-member shared-prefix depth: index d counts
    /// members whose first d plan ops were shared with a sibling
    /// (last bucket = 8+).
    pub shared_depth_hist: [AtomicU64; 9],
    /// Intersections the trie merged away, planner's estimate.
    pub saved_intersections_est: AtomicU64,
}

impl MultiQueryMetrics {
    fn note_batch(&self, stats: &light_order::MultiPlanStats) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_members
            .fetch_add(stats.members as u64, Ordering::Relaxed);
        for &d in &stats.member_shared_depth {
            let bucket = d.min(self.shared_depth_hist.len() - 1);
            self.shared_depth_hist[bucket].fetch_add(1, Ordering::Relaxed);
        }
        self.saved_intersections_est
            .fetch_add(stats.saved_intersections_est as u64, Ordering::Relaxed);
    }
}

/// The gate itself: one open group per graph, plus the counters.
pub struct BatchGate {
    groups: Mutex<HashMap<String, Arc<Group>>>,
    /// Batch formation counters (exported by `stats`).
    pub metrics: MultiQueryMetrics,
}

impl Default for BatchGate {
    fn default() -> Self {
        BatchGate {
            groups: Mutex::new(HashMap::new()),
            metrics: MultiQueryMetrics::default(),
        }
    }
}

impl BatchGate {
    /// Enter the gate for `graph`. Either joins the open window as a
    /// follower or opens a new one as its leader.
    pub fn join(&self, graph: &str, member: MemberExec) -> Ticket {
        let mut groups = lock_recover(&self.groups);
        if let Some(g) = groups.get(graph) {
            let mut st = lock_recover(&g.state);
            if st.open && st.members.len() < MAX_MULTI_MEMBERS {
                st.members.push(member);
                let idx = st.members.len() - 1;
                let g = Arc::clone(g);
                drop(st);
                return Ticket::Follower(g, idx);
            }
        }
        let group = Arc::new(Group {
            state: Mutex::new(GroupState {
                open: true,
                members: vec![member],
                done: false,
                fallback: false,
                results: Vec::new(),
            }),
            cv: Condvar::new(),
        });
        groups.insert(graph.to_string(), Arc::clone(&group));
        Ticket::Leader(group)
    }

    /// Leader side: sleep out the collection window, close the group,
    /// and either run the shared pass or fall back.
    ///
    /// `engine` is the leader's fully resolved [`EngineConfig`] minus the
    /// per-member fields (budget/cancel live in the member specs); it
    /// carries the shared aux store, kernel, and δ for the whole pass.
    pub fn lead(
        &self,
        group: &Arc<Group>,
        graph_name: &str,
        g: &CsrGraph,
        window: Duration,
        engine: &EngineConfig,
        pcfg_base: &ParallelConfig,
    ) -> BatchVerdict {
        std::thread::sleep(window);

        // Retire this group from the map first so late arrivals open a
        // fresh window instead of joining a closed one.
        {
            let mut groups = lock_recover(&self.groups);
            if let Some(cur) = groups.get(graph_name) {
                if Arc::ptr_eq(cur, group) {
                    groups.remove(graph_name);
                }
            }
        }

        let (plans, specs, threads, n_members) = {
            let mut st = lock_recover(&group.state);
            st.open = false;
            if st.members.len() == 1 {
                // Nobody joined: the window cost a sleep, nothing more.
                self.metrics.singletons.fetch_add(1, Ordering::Relaxed);
                st.done = true;
                st.fallback = true;
                return BatchVerdict::Solo;
            }
            let plans: Vec<Arc<QueryPlan>> =
                st.members.iter().map(|m| Arc::clone(&m.plan)).collect();
            let specs: Vec<light_core::MemberSpec> = st
                .members
                .iter()
                .map(|m| light_core::MemberSpec {
                    time_budget: m.time_budget,
                    deadline: None,
                    cancel: Some(m.cancel.clone()),
                })
                .collect();
            let threads = st.members.iter().map(|m| m.threads).max().unwrap_or(1);
            let n = st.members.len();
            (plans, specs, threads, n)
        };

        // The whole compile-and-run sequence is unwind-contained: a panic
        // anywhere inside must never strand followers on the condvar.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mp = match MultiPlan::build(&plans) {
                Ok(mp) => mp,
                Err(_) => return None,
            };
            let stats = mp.reuse_summary();
            let mut pcfg = pcfg_base.clone();
            pcfg.num_threads = threads;
            let report = run_multi_parallel(&mp, g, engine, &specs, &pcfg);
            Some((report, stats))
        }));

        let mut st = lock_recover(&group.state);
        let verdict = match run {
            Ok(Some((report, stats))) => {
                self.metrics.note_batch(&stats);
                st.results = report
                    .members
                    .iter()
                    .enumerate()
                    .map(|(i, m)| {
                        // Per-member finalize under its own containment:
                        // the chaos failpoint can kill one member here
                        // without touching its siblings.
                        let fin = std::panic::catch_unwind(|| {
                            light_failpoint::fail_point!("serve::batch_member");
                            MemberOutput {
                                matches: m.matches,
                                outcome: m.outcome,
                                elapsed: report.elapsed,
                                failures: report.failures,
                                members: n_members,
                                leader: i == 0,
                            }
                        });
                        Some(fin.map_err(crate::service::panic_message))
                    })
                    .collect();
                BatchVerdict::Ran(st.results[0].clone().expect("leader result set"))
            }
            Ok(None) => {
                // The trie refused the member set: everyone runs solo.
                self.metrics
                    .fallbacks
                    .fetch_add(n_members as u64, Ordering::Relaxed);
                st.fallback = true;
                BatchVerdict::Solo
            }
            Err(payload) => {
                let msg = crate::service::panic_message(payload);
                st.results = (0..n_members).map(|_| Some(Err(msg.clone()))).collect();
                BatchVerdict::Ran(Err(msg))
            }
        };
        st.done = true;
        drop(st);
        group.cv.notify_all();
        verdict
    }

    /// Follower side: wait for the leader's verdict. `cutoff` bounds the
    /// wait (member deadline plus slack) so a wedged leader can never
    /// hang a follower past its own budget — the timeout falls back to
    /// the solo path, which re-runs the query independently.
    pub fn follow(&self, group: &Arc<Group>, idx: usize, cutoff: Duration) -> BatchVerdict {
        let deadline = Instant::now() + cutoff;
        let mut st = lock_recover(&group.state);
        while !st.done {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Abandon the batch: mark our slot so a late leader
                // verdict is dropped, and run solo.
                return BatchVerdict::Solo;
            }
            let (g, _timeout) = group
                .cv
                .wait_timeout(st, left)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
        if st.fallback {
            return BatchVerdict::Solo;
        }
        match st.results.get(idx).cloned().flatten() {
            Some(r) => BatchVerdict::Ran(r),
            None => BatchVerdict::Solo,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_graph::generators;
    use light_pattern::Query;

    fn member(plan: Arc<QueryPlan>) -> MemberExec {
        MemberExec {
            plan,
            time_budget: None,
            cancel: CancelToken::new(),
            threads: 1,
        }
    }

    #[test]
    fn leader_and_followers_get_matching_exact_counts() {
        let g = generators::barabasi_albert(300, 4, 21);
        let cfg = EngineConfig::light();
        let gate = Arc::new(BatchGate::default());
        let queries = [Query::Triangle, Query::P1, Query::P2];
        let expect: Vec<u64> = queries
            .iter()
            .map(|q| light_core::run_query(&q.pattern(), &g, &cfg).matches)
            .collect();
        let plans: Vec<Arc<QueryPlan>> = queries
            .iter()
            .map(|q| Arc::new(cfg.plan(&q.pattern(), &g)))
            .collect();

        // Leader joins first, followers pile in behind it while it sleeps
        // out the window.
        let t0 = match gate.join("g", member(Arc::clone(&plans[0]))) {
            Ticket::Leader(grp) => grp,
            Ticket::Follower(..) => panic!("first join must lead"),
        };
        let mut follower_handles = Vec::new();
        for plan in plans[1..].iter().cloned() {
            match gate.join("g", member(plan)) {
                Ticket::Follower(grp, idx) => {
                    let gate = Arc::clone(&gate);
                    follower_handles.push(std::thread::spawn(move || {
                        gate.follow(&grp, idx, Duration::from_secs(30))
                    }));
                }
                Ticket::Leader(_) => panic!("window must still be open"),
            }
        }
        let verdict = gate.lead(
            &t0,
            "g",
            &g,
            Duration::from_millis(5),
            &cfg,
            &ParallelConfig::new(2),
        );
        match verdict {
            BatchVerdict::Ran(Ok(out)) => {
                assert_eq!(out.matches, expect[0]);
                assert_eq!(out.members, 3);
                assert!(out.leader);
            }
            other => panic!(
                "leader must get a result, got {:?}",
                matches!(other, BatchVerdict::Solo)
            ),
        }
        for (h, want) in follower_handles.into_iter().zip(&expect[1..]) {
            match h.join().expect("follower thread") {
                BatchVerdict::Ran(Ok(out)) => {
                    assert_eq!(out.matches, *want);
                    assert!(!out.leader);
                }
                _ => panic!("follower must get a result"),
            }
        }
        assert_eq!(gate.metrics.batches.load(Ordering::Relaxed), 1);
        assert_eq!(gate.metrics.batched_members.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn lonely_window_goes_solo_and_counts_a_singleton() {
        let g = generators::barabasi_albert(100, 3, 5);
        let cfg = EngineConfig::light();
        let gate = BatchGate::default();
        let plan = Arc::new(cfg.plan(&Query::Triangle.pattern(), &g));
        let grp = match gate.join("g", member(plan)) {
            Ticket::Leader(grp) => grp,
            _ => panic!("must lead"),
        };
        match gate.lead(
            &grp,
            "g",
            &g,
            Duration::from_millis(1),
            &cfg,
            &ParallelConfig::new(1),
        ) {
            BatchVerdict::Solo => {}
            _ => panic!("singleton window must go solo"),
        }
        assert_eq!(gate.metrics.singletons.load(Ordering::Relaxed), 1);
        assert_eq!(gate.metrics.batches.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn closed_group_is_replaced_for_late_arrivals() {
        let g = generators::barabasi_albert(100, 3, 5);
        let cfg = EngineConfig::light();
        let gate = BatchGate::default();
        let plan = Arc::new(cfg.plan(&Query::Triangle.pattern(), &g));
        let grp = match gate.join("g", member(Arc::clone(&plan))) {
            Ticket::Leader(grp) => grp,
            _ => panic!("must lead"),
        };
        let _ = gate.lead(&grp, "g", &g, Duration::ZERO, &cfg, &ParallelConfig::new(1));
        // The retired window is gone: the next join leads a fresh one.
        match gate.join("g", member(plan)) {
            Ticket::Leader(_) => {}
            Ticket::Follower(..) => panic!("must not join a closed window"),
        }
    }
}
