#![warn(missing_docs)]

//! # light-serve — the resident query service
//!
//! The paper's engine answers one query per process; its serving story
//! (shared with the SEED/CECI line of work) assumes the opposite shape:
//! the data graph is loaded and preprocessed **once**, then queried many
//! times. This crate is that shape — a long-lived daemon in front of the
//! parallel engine:
//!
//! * [`GraphCatalog`] — named graphs loaded once (binary snapshots, text
//!   edge lists, or built-in datasets) behind `Arc<CsrGraph>`, each with
//!   precomputed [`light_graph::stats::GraphStats`];
//! * [`PlanCache`] — repeated patterns skip order / exec-order / aux-plan
//!   search, keyed by `(pattern, graph, planning-relevant config)`;
//! * [`QueryService`] — admission control (`max_concurrent` permits, a
//!   bounded wait queue, typed `overloaded` rejections), per-query
//!   deadlines and [`light_core::CancelToken`]-based cancellation, and
//!   aggregate service metrics surfaced by a `stats` request;
//! * [`server`] — newline-delimited JSON over stdin/stdout and a Unix
//!   domain socket (`std::os::unix::net`, dependency-free), with graceful
//!   drain on SIGINT / `shutdown`.
//!
//! The CLI front end is `light serve` (daemon) and `light query` (client);
//! see `docs/serve.md` for the protocol and DESIGN.md §12 for the
//! architecture.
//!
//! ```
//! use std::sync::Arc;
//! use light_serve::{GraphCatalog, QueryService, ServeConfig};
//!
//! let mut catalog = GraphCatalog::new();
//! catalog
//!     .insert("demo", light_graph::generators::barabasi_albert(300, 3, 7))
//!     .unwrap();
//! let svc = Arc::new(QueryService::new(catalog, ServeConfig::default()));
//! let resp = svc.handle_line(r#"{"op":"query","pattern":"triangle","id":1}"#);
//! assert!(resp.contains("\"status\":\"ok\""));
//! ```

pub mod batch;
pub mod catalog;
pub mod json;
pub mod plan_cache;
pub mod protocol;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
pub mod service;

pub use batch::{BatchGate, BatchVerdict, MemberExec, MemberOutput, MultiQueryMetrics, Ticket};
pub use catalog::{CatalogEntry, GraphCatalog};
pub use plan_cache::{PlanCache, PlanKey, PLAN_CACHE_CAP};
pub use protocol::{ErrorCode, Request, WireOutcome, MAX_REQUEST_BYTES};
#[cfg(target_os = "linux")]
pub use reactor::ReactorServer;
pub use server::{drain, serve_connection, serve_stdio, DrainReport, SocketServer};
pub use service::{QueryService, ServeConfig, ServiceMetrics};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use light_graph::generators;
    use std::sync::Arc;

    fn demo_service(cfg: ServeConfig) -> Arc<QueryService> {
        let mut catalog = GraphCatalog::new();
        catalog
            .insert("demo", generators::barabasi_albert(250, 3, 11))
            .unwrap();
        Arc::new(QueryService::new(catalog, cfg))
    }

    fn field(resp: &str, name: &str) -> Json {
        protocol::response_field(resp, name).unwrap_or_else(|| panic!("missing {name} in {resp}"))
    }

    #[test]
    fn query_counts_match_direct_run() {
        let svc = demo_service(ServeConfig::default());
        let entry = svc.catalog().get("demo").unwrap();
        let expect = light_core::run_query(
            &light_pattern::Query::P2.pattern(),
            &entry.graph(),
            &svc.config().engine,
        )
        .matches;

        let resp = svc.handle_line(r#"{"op":"query","pattern":"P2","graph":"demo","id":1}"#);
        assert_eq!(field(&resp, "status").as_str(), Some("ok"));
        assert_eq!(field(&resp, "matches").as_u64(), Some(expect));
        assert_eq!(field(&resp, "plan_cache").as_str(), Some("miss"));

        // Same pattern again: plan-cache hit, same count.
        let resp2 = svc.handle_line(r#"{"op":"query","pattern":"P2","graph":"demo","id":2}"#);
        assert_eq!(field(&resp2, "plan_cache").as_str(), Some("hit"));
        assert_eq!(field(&resp2, "matches").as_u64(), Some(expect));
        assert!(svc.plan_cache().hit_rate() > 0.0);
    }

    #[test]
    fn sole_graph_is_default_and_errors_are_typed() {
        let svc = demo_service(ServeConfig::default());
        let ok = svc.handle_line(r#"{"op":"query","pattern":"triangle"}"#);
        assert_eq!(field(&ok, "status").as_str(), Some("ok"));
        assert_eq!(field(&ok, "graph").as_str(), Some("demo"));

        let e = svc.handle_line(r#"{"op":"query","pattern":"triangle","graph":"nope"}"#);
        assert_eq!(field(&e, "code").as_str(), Some("unknown_graph"));
        let e = svc.handle_line(r#"{"op":"query","pattern":"zigzag"}"#);
        assert_eq!(field(&e, "code").as_str(), Some("bad_pattern"));
        let e = svc.handle_line("garbage");
        assert_eq!(field(&e, "code").as_str(), Some("bad_request"));
        let e = svc.handle_line(r#"{"op":"frobnicate"}"#);
        assert_eq!(field(&e, "code").as_str(), Some("unknown_op"));
    }

    #[test]
    fn stats_and_catalog_ops() {
        let svc = demo_service(ServeConfig::default());
        svc.handle_line(r#"{"op":"query","pattern":"P1"}"#);
        svc.handle_line(r#"{"op":"query","pattern":"P1"}"#);

        let stats = svc.handle_line(r#"{"op":"stats","id":"s"}"#);
        let doc = Json::parse(&stats).unwrap();
        assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
        let q = doc.get("queries").unwrap();
        assert_eq!(q.get("total").and_then(Json::as_u64), Some(2));
        assert_eq!(q.get("ok").and_then(Json::as_u64), Some(2));
        let pc = doc.get("plan_cache").unwrap();
        assert_eq!(pc.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(pc.get("misses").and_then(Json::as_u64), Some(1));

        let with_engine = svc.handle_line(r#"{"op":"stats","engine":true}"#);
        assert!(Json::parse(&with_engine).unwrap().get("engine").is_some());

        let cat = svc.handle_line(r#"{"op":"catalog","id":9}"#);
        let doc = Json::parse(&cat).unwrap();
        match doc.get("graphs") {
            Some(Json::Arr(gs)) => {
                assert_eq!(gs.len(), 1);
                assert_eq!(gs[0].get("name").and_then(Json::as_str), Some("demo"));
                assert!(gs[0].get("vertices").and_then(Json::as_u64).unwrap() > 0);
            }
            other => panic!("expected graphs array, got {other:?}"),
        }

        let pong = svc.handle_line(r#"{"op":"ping"}"#);
        assert_eq!(field(&pong, "pong").as_bool(), Some(true));
    }

    #[test]
    fn shutdown_op_drains() {
        let svc = demo_service(ServeConfig::default());
        let ack = svc.handle_line(r#"{"op":"shutdown"}"#);
        assert_eq!(field(&ack, "draining").as_bool(), Some(true));
        assert!(svc.is_draining());
        let e = svc.handle_line(r#"{"op":"query","pattern":"P1"}"#);
        assert_eq!(field(&e, "code").as_str(), Some("draining"));
        let rep = drain(&svc);
        assert_eq!(rep.cancelled, 0);
    }

    #[test]
    fn serve_connection_over_buffers() {
        let svc = demo_service(ServeConfig::default());
        let input =
            b"{\"op\":\"ping\",\"id\":1}\n\n{\"op\":\"query\",\"pattern\":\"triangle\",\"id\":2}\n"
                .to_vec();
        let mut out: Vec<u8> = Vec::new();
        serve_connection(&svc, &input[..], &mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert_eq!(field(lines[0], "pong").as_bool(), Some(true));
        assert_eq!(field(lines[1], "status").as_str(), Some("ok"));
        // Unterminated final line is still served.
        let mut out2: Vec<u8> = Vec::new();
        serve_connection(&svc, &b"{\"op\":\"ping\"}"[..], &mut out2, false).unwrap();
        assert!(String::from_utf8(out2).unwrap().contains("pong"));
    }

    #[test]
    fn oversized_line_gets_typed_error_and_close() {
        let svc = demo_service(ServeConfig::default());
        let big = format!(
            "{{\"op\":\"ping\",\"pad\":\"{}\"}}\n{{\"op\":\"ping\"}}\n",
            "x".repeat(MAX_REQUEST_BYTES + 10)
        );
        let mut out: Vec<u8> = Vec::new();
        serve_connection(&svc, big.as_bytes(), &mut out, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // One error response, then hang-up (the second ping is never read).
        assert_eq!(lines.len(), 1, "{text}");
        assert_eq!(field(lines[0], "status").as_str(), Some("error"));
    }
}
