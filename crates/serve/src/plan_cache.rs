//! The plan cache: repeated patterns skip order / exec-order / aux-plan
//! search entirely.
//!
//! Planning is cheap relative to enumeration on one query, but a serving
//! daemon sees the *same* handful of patterns over and over — the CECI /
//! SEED amortization argument. A cached [`QueryPlan`] is keyed by
//! everything that feeds plan construction:
//!
//! * the pattern's exact edge set (patterns are ≤ 8 vertices, so the edge
//!   list is the canonical form — no isomorphism folding, by design:
//!   clients that spell the same shape differently get distinct but
//!   equally valid plans);
//! * the catalog graph name (plans embed graph-derived cardinality
//!   estimates, so a plan never transfers between graphs) **and the
//!   entry's update generation** — an `update` op changes the graph, so
//!   plans optimized against the old statistics must not be served for
//!   the new graph (the mutation-invalidation bugfix; stale-generation
//!   entries age out through LRU);
//! * the engine knobs that alter planning: variant (materialization ×
//!   candidate strategy), symmetry breaking, and the aux-cache benefit
//!   threshold.
//!
//! Kernel choice and δ do *not* key the cache — they configure execution,
//! not the plan — so switching kernels on a warm pattern still hits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::service::lock_recover;
use light_core::{EngineConfig, EngineVariant};
use light_order::QueryPlan;
use light_pattern::PatternGraph;

/// Bound on resident plans. Plans are small (a few hundred bytes), but an
/// adversarial client cycling unique patterns must not grow the daemon
/// without bound; past the cap the least-recently-used entry is evicted,
/// so the hot P1–P7 catalog survives a cold scan of one-off patterns.
pub const PLAN_CACHE_CAP: usize = 4096;

/// Everything that distinguishes one plan from another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Catalog graph name (estimates are graph-specific).
    graph: String,
    /// The entry's update generation at key-build time: a committed
    /// `update` bumps it, so plans built against the pre-update graph
    /// can never be served afterwards.
    generation: u64,
    /// Pattern vertex count.
    n: usize,
    /// Canonical (sorted `a < b`) pattern edge list.
    edges: Vec<(u8, u8)>,
    /// Engine variant (materialization × candidate strategy).
    variant: EngineVariant,
    /// Symmetry breaking on/off (changes the partial order, hence π).
    symmetry: bool,
    /// Aux-cache benefit threshold, bit-exact (feeds TrimDirective
    /// emission).
    aux_threshold_bits: u64,
}

impl PlanKey {
    /// Build the key for `(pattern, graph @ generation, config)`.
    pub fn new(
        pattern: &PatternGraph,
        graph: &str,
        generation: u64,
        cfg: &EngineConfig,
    ) -> PlanKey {
        let mut edges = pattern.edges();
        edges.sort_unstable();
        PlanKey {
            graph: graph.to_string(),
            generation,
            n: pattern.num_vertices(),
            edges,
            variant: cfg.variant,
            symmetry: cfg.symmetry_breaking,
            aux_threshold_bits: cfg.aux_threshold.to_bits(),
        }
    }
}

/// A resident plan plus the logical clock tick of its last use.
struct CacheEntry {
    plan: Arc<QueryPlan>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<PlanKey, CacheEntry>,
    /// Logical clock for LRU: bumped on every touch (hit or insert). An
    /// O(1) stamp per access; the O(n) min-scan happens only on eviction,
    /// which fires at most once per insert past the cap.
    clock: u64,
}

impl CacheState {
    /// Refresh `key`'s LRU stamp and return its plan, or `None` on a miss.
    ///
    /// The clock advances only on a hit. `get_or_build` probes the cache
    /// *before* running the build closure (the build-outside-lock path),
    /// and the build can fail — a panicking failpoint, an OOM-aborted
    /// planner — so a probe must be free of side effects: a failed build
    /// must not refresh any stamp or occupy a slot, and the only LRU
    /// mutation for the new entry happens after the build succeeded.
    fn touch(&mut self, key: &PlanKey) -> Option<Arc<QueryPlan>> {
        if let Some(e) = self.map.get_mut(key) {
            self.clock += 1;
            e.last_used = self.clock;
            Some(Arc::clone(&e.plan))
        } else {
            None
        }
    }
}

/// Thread-safe LRU plan cache with hit/miss counters.
pub struct PlanCache {
    state: Mutex<CacheState>,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache at the default capacity.
    pub fn new() -> PlanCache {
        Self::with_capacity(PLAN_CACHE_CAP)
    }

    /// An empty cache bounded at `cap` entries (tests shrink it to make
    /// eviction behavior observable with a handful of keys).
    pub fn with_capacity(cap: usize) -> PlanCache {
        PlanCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                clock: 0,
            }),
            cap: cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the plan for `key`, building it with `build` on a miss.
    /// Returns the plan and whether this was a hit. The build runs outside
    /// the lock: two racing misses on the same key both build, and the
    /// loser's plan is dropped — wasted work, never a wrong answer. A
    /// build that panics unwinds out of here having changed nothing but
    /// the miss counter: no slot, no eviction, no LRU stamp.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> QueryPlan,
    ) -> (Arc<QueryPlan>, bool) {
        if let Some(hit) = lock_recover(&self.state).touch(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        let mut st = lock_recover(&self.state);
        if let Some(raced) = st.touch(&key) {
            // Another thread built it first; keep theirs (already shared).
            return (raced, false);
        }
        if st.map.len() >= self.cap {
            // Evict the least-recently-used entry: the smallest stamp.
            if let Some(victim) = st
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                st.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        st.clock += 1;
        let entry = CacheEntry {
            plan: Arc::clone(&plan),
            last_used: st.clock,
        };
        st.map.insert(key, entry);
        (plan, false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted at the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit rate in `[0, 1]` (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_graph::generators;
    use light_pattern::Query;

    fn key_for(q: Query, graph: &str, cfg: &EngineConfig) -> PlanKey {
        PlanKey::new(&q.pattern(), graph, 0, cfg)
    }

    #[test]
    fn hit_on_repeat_miss_on_new() {
        let g = generators::barabasi_albert(200, 3, 1);
        let cfg = EngineConfig::light();
        let cache = PlanCache::new();
        let build = || cfg.plan(&Query::P2.pattern(), &g);

        let (_, hit1) = cache.get_or_build(key_for(Query::P2, "g", &cfg), build);
        let (_, hit2) = cache.get_or_build(key_for(Query::P2, "g", &cfg), build);
        assert!(!hit1 && hit2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);

        // Different graph name, variant, or symmetry → different key.
        let se = EngineConfig::se();
        assert_ne!(key_for(Query::P2, "g", &cfg), key_for(Query::P2, "h", &cfg));
        assert_ne!(key_for(Query::P2, "g", &cfg), key_for(Query::P2, "g", &se));
        assert_ne!(
            key_for(Query::P2, "g", &cfg),
            key_for(Query::P2, "g", &cfg.clone().symmetry(false))
        );
        // Kernel/δ do not key the cache.
        assert_eq!(
            key_for(Query::P2, "g", &cfg),
            key_for(
                Query::P2,
                "g",
                &cfg.clone()
                    .intersect(light_setops::IntersectKind::MergeScalar)
                    .delta(7)
            )
        );
    }

    #[test]
    fn same_shape_same_key_across_spellings() {
        // Edge order in the input must not matter: the key sorts.
        let a = PatternGraph::parse("0-1,1-2,2-0").unwrap();
        let b = PatternGraph::parse("2-0,0-1,1-2").unwrap();
        let cfg = EngineConfig::light();
        assert_eq!(
            PlanKey::new(&a, "g", 0, &cfg),
            PlanKey::new(&b, "g", 0, &cfg)
        );
    }

    #[test]
    fn eviction_bounds_residency() {
        let g = generators::complete(6);
        let cfg = EngineConfig::light();
        let cache = PlanCache::new();
        // Unique patterns beyond the cap: grow paths of distinct lengths
        // is impossible at ≤8 vertices, so reuse distinct graph names.
        for i in 0..(PLAN_CACHE_CAP + 5) {
            let key = PlanKey::new(&Query::Triangle.pattern(), &format!("g{i}"), 0, &cfg);
            cache.get_or_build(key, || cfg.plan(&Query::Triangle.pattern(), &g));
        }
        assert_eq!(cache.len(), PLAN_CACHE_CAP);
        assert_eq!(cache.evictions(), 5);
        // With no intervening re-use, LRU degrades to FIFO: the very
        // first key was evicted and re-querying it is a miss.
        let key0 = PlanKey::new(&Query::Triangle.pattern(), "g0", 0, &cfg);
        let (_, hit) = cache.get_or_build(key0, || cfg.plan(&Query::Triangle.pattern(), &g));
        assert!(!hit);
    }

    #[test]
    fn lru_keeps_hot_plans_under_cold_scan() {
        // The mixed-load regression FIFO failed: a hot working set (the
        // P1–P7 catalog) interleaved with a cold stream of one-off
        // patterns. FIFO evicts by insertion age, so the hot plans —
        // inserted first — die as soon as enough cold keys pass through;
        // LRU keeps them resident because every round re-touches them.
        let g = generators::complete(6);
        let cfg = EngineConfig::light();
        let hot: Vec<Query> = vec![Query::Triangle, Query::P1, Query::P2, Query::P3, Query::P4];
        let cache = PlanCache::with_capacity(hot.len() + 2);
        let mut cold = 0usize;
        for round in 0..20 {
            for &q in &hot {
                let key = PlanKey::new(&q.pattern(), "g", 0, &cfg);
                let (_, hit) = cache.get_or_build(key, || cfg.plan(&q.pattern(), &g));
                // After the warm-up round every hot lookup must hit, no
                // matter how much cold traffic went by in between.
                if round > 0 {
                    assert!(hit, "hot {q:?} evicted in round {round}");
                }
            }
            // Two one-off patterns per round: enough cold traffic to turn
            // over a FIFO of this size several times across the run.
            for _ in 0..2 {
                cold += 1;
                let key = PlanKey::new(&Query::Triangle.pattern(), &format!("cold{cold}"), 0, &cfg);
                cache.get_or_build(key, || cfg.plan(&Query::Triangle.pattern(), &g));
            }
        }
        // 19 re-hit rounds × 5 hot plans, and the only misses are the
        // first round plus the cold stream.
        assert_eq!(cache.hits(), 19 * hot.len() as u64);
        assert_eq!(cache.misses(), hot.len() as u64 + cold as u64);
        assert!(cache.hit_rate() > 0.6, "rate {}", cache.hit_rate());
    }

    #[test]
    fn failed_build_does_not_touch_lru_or_occupy_a_slot() {
        // Build-outside-lock regression: a build that panics (armed
        // failpoint, planner bug) must leave the cache exactly as it
        // found it — no resident slot, no eviction, and no LRU stamp
        // refresh that would perturb the victim order of later inserts.
        let g = generators::complete(6);
        let cfg = EngineConfig::light();
        let cache = PlanCache::with_capacity(2);
        let build = || cfg.plan(&Query::Triangle.pattern(), &g);
        let key = |name: &str| PlanKey::new(&Query::Triangle.pattern(), name, 0, &cfg);

        cache.get_or_build(key("a"), build); // a
        cache.get_or_build(key("b"), build); // a b
        cache.get_or_build(key("a"), build); // touch a: b is now LRU

        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(key("c"), || panic!("injected build failure"))
        }));
        assert!(boom.is_err(), "the panic must propagate");
        assert_eq!(cache.len(), 2, "failed build must not occupy a slot");
        assert_eq!(cache.evictions(), 0, "failed build must not evict");

        // LRU order is intact: the next insert evicts b (the LRU entry),
        // not a — the failed probe refreshed nothing.
        cache.get_or_build(key("d"), build);
        let (_, hit_a) = cache.get_or_build(key("a"), build);
        assert!(hit_a, "entry touched before the failure must survive");

        // A later successful build of the same key inserts normally.
        let (_, hit_c) = cache.get_or_build(key("c"), build);
        assert!(!hit_c);
        let (_, hit_c2) = cache.get_or_build(key("c"), build);
        assert!(hit_c2, "the successful rebuild must be resident");
    }

    #[test]
    fn lru_evicts_least_recently_used_not_oldest() {
        let g = generators::complete(6);
        let cfg = EngineConfig::light();
        let cache = PlanCache::with_capacity(2);
        let build = || cfg.plan(&Query::Triangle.pattern(), &g);
        let key = |name: &str| PlanKey::new(&Query::Triangle.pattern(), name, 0, &cfg);

        cache.get_or_build(key("a"), build); // a
        cache.get_or_build(key("b"), build); // a b
        cache.get_or_build(key("a"), build); // touch a: b is now LRU
        cache.get_or_build(key("c"), build); // evicts b (FIFO would evict a)
        let (_, hit_a) = cache.get_or_build(key("a"), build);
        assert!(hit_a, "the re-used oldest entry must survive");
        let (_, hit_b) = cache.get_or_build(key("b"), build);
        assert!(!hit_b, "the least-recently-used entry must be gone");
    }
}
