//! The plan cache: repeated patterns skip order / exec-order / aux-plan
//! search entirely.
//!
//! Planning is cheap relative to enumeration on one query, but a serving
//! daemon sees the *same* handful of patterns over and over — the CECI /
//! SEED amortization argument. A cached [`QueryPlan`] is keyed by
//! everything that feeds plan construction:
//!
//! * the pattern's exact edge set (patterns are ≤ 8 vertices, so the edge
//!   list is the canonical form — no isomorphism folding, by design:
//!   clients that spell the same shape differently get distinct but
//!   equally valid plans);
//! * the catalog graph name (plans embed graph-derived cardinality
//!   estimates, so a plan never transfers between graphs);
//! * the engine knobs that alter planning: variant (materialization ×
//!   candidate strategy), symmetry breaking, and the aux-cache benefit
//!   threshold.
//!
//! Kernel choice and δ do *not* key the cache — they configure execution,
//! not the plan — so switching kernels on a warm pattern still hits.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use light_core::{EngineConfig, EngineVariant};
use light_order::QueryPlan;
use light_pattern::PatternGraph;

/// Bound on resident plans. Plans are small (a few hundred bytes), but an
/// adversarial client cycling unique patterns must not grow the daemon
/// without bound; past the cap the oldest entry is evicted (FIFO).
pub const PLAN_CACHE_CAP: usize = 4096;

/// Everything that distinguishes one plan from another.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Catalog graph name (estimates are graph-specific).
    graph: String,
    /// Pattern vertex count.
    n: usize,
    /// Canonical (sorted `a < b`) pattern edge list.
    edges: Vec<(u8, u8)>,
    /// Engine variant (materialization × candidate strategy).
    variant: EngineVariant,
    /// Symmetry breaking on/off (changes the partial order, hence π).
    symmetry: bool,
    /// Aux-cache benefit threshold, bit-exact (feeds TrimDirective
    /// emission).
    aux_threshold_bits: u64,
}

impl PlanKey {
    /// Build the key for `(pattern, graph, config)`.
    pub fn new(pattern: &PatternGraph, graph: &str, cfg: &EngineConfig) -> PlanKey {
        let mut edges = pattern.edges();
        edges.sort_unstable();
        PlanKey {
            graph: graph.to_string(),
            n: pattern.num_vertices(),
            edges,
            variant: cfg.variant,
            symmetry: cfg.symmetry_breaking,
            aux_threshold_bits: cfg.aux_threshold.to_bits(),
        }
    }
}

struct CacheState {
    map: HashMap<PlanKey, Arc<QueryPlan>>,
    /// Insertion order for FIFO eviction at [`PLAN_CACHE_CAP`].
    order: Vec<PlanKey>,
}

/// Thread-safe plan cache with hit/miss counters.
pub struct PlanCache {
    state: Mutex<CacheState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                order: Vec::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Fetch the plan for `key`, building it with `build` on a miss.
    /// Returns the plan and whether this was a hit. The build runs outside
    /// the lock: two racing misses on the same key both build, and the
    /// loser's plan is dropped — wasted work, never a wrong answer.
    pub fn get_or_build(
        &self,
        key: PlanKey,
        build: impl FnOnce() -> QueryPlan,
    ) -> (Arc<QueryPlan>, bool) {
        if let Some(hit) = self.state.lock().unwrap().map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(hit), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        let mut st = self.state.lock().unwrap();
        if let Some(raced) = st.map.get(&key) {
            // Another thread built it first; keep theirs (already shared).
            return (Arc::clone(raced), false);
        }
        if st.map.len() >= PLAN_CACHE_CAP {
            let victim = st.order.remove(0);
            st.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        st.order.push(key.clone());
        st.map.insert(key, Arc::clone(&plan));
        (plan, false)
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted at the capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit rate in `[0, 1]` (0 when no lookups yet).
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits();
        let m = self.misses();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_graph::generators;
    use light_pattern::Query;

    fn key_for(q: Query, graph: &str, cfg: &EngineConfig) -> PlanKey {
        PlanKey::new(&q.pattern(), graph, cfg)
    }

    #[test]
    fn hit_on_repeat_miss_on_new() {
        let g = generators::barabasi_albert(200, 3, 1);
        let cfg = EngineConfig::light();
        let cache = PlanCache::new();
        let build = || cfg.plan(&Query::P2.pattern(), &g);

        let (_, hit1) = cache.get_or_build(key_for(Query::P2, "g", &cfg), build);
        let (_, hit2) = cache.get_or_build(key_for(Query::P2, "g", &cfg), build);
        assert!(!hit1 && hit2);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);

        // Different graph name, variant, or symmetry → different key.
        let se = EngineConfig::se();
        assert_ne!(key_for(Query::P2, "g", &cfg), key_for(Query::P2, "h", &cfg));
        assert_ne!(key_for(Query::P2, "g", &cfg), key_for(Query::P2, "g", &se));
        assert_ne!(
            key_for(Query::P2, "g", &cfg),
            key_for(Query::P2, "g", &cfg.clone().symmetry(false))
        );
        // Kernel/δ do not key the cache.
        assert_eq!(
            key_for(Query::P2, "g", &cfg),
            key_for(
                Query::P2,
                "g",
                &cfg.clone()
                    .intersect(light_setops::IntersectKind::MergeScalar)
                    .delta(7)
            )
        );
    }

    #[test]
    fn same_shape_same_key_across_spellings() {
        // Edge order in the input must not matter: the key sorts.
        let a = PatternGraph::parse("0-1,1-2,2-0").unwrap();
        let b = PatternGraph::parse("2-0,0-1,1-2").unwrap();
        let cfg = EngineConfig::light();
        assert_eq!(PlanKey::new(&a, "g", &cfg), PlanKey::new(&b, "g", &cfg));
    }

    #[test]
    fn eviction_bounds_residency() {
        let g = generators::complete(6);
        let cfg = EngineConfig::light();
        let cache = PlanCache::new();
        // Unique patterns beyond the cap: grow paths of distinct lengths
        // is impossible at ≤8 vertices, so reuse distinct graph names.
        for i in 0..(PLAN_CACHE_CAP + 5) {
            let key = PlanKey::new(&Query::Triangle.pattern(), &format!("g{i}"), &cfg);
            cache.get_or_build(key, || cfg.plan(&Query::Triangle.pattern(), &g));
        }
        assert_eq!(cache.len(), PLAN_CACHE_CAP);
        assert_eq!(cache.evictions(), 5);
        // The very first key was evicted: re-querying it is a miss.
        let key0 = PlanKey::new(&Query::Triangle.pattern(), "g0", &cfg);
        let (_, hit) = cache.get_or_build(key0, || cfg.plan(&Query::Triangle.pattern(), &g));
        assert!(!hit);
    }
}
