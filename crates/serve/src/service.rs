//! The query service: admission control, plan-cached execution, service
//! metrics, and the supervision layer that keeps one poisoned query from
//! taking the daemon down.
//!
//! One [`QueryService`] is shared (behind `Arc`) by every connection
//! handler; [`QueryService::handle_line`] is the single entry point that
//! turns a request line into a response line, so stdio, socket handlers,
//! and tests all exercise the identical path.
//!
//! ## Supervision (DESIGN.md §15)
//!
//! The whole query path — catalog resolve, admission, plan build, engine
//! run — executes under `catch_unwind`. A panic anywhere inside becomes a
//! typed `internal_error` response with the query id echoed and the
//! graph/pattern context attached, bumps the monotone `panics_total`
//! counter, and leaves the admission semaphore, live-token registry, and
//! plan cache provably intact: the permit and token registration are RAII
//! guards that release during unwind, and every service lock recovers
//! from poisoning instead of propagating it.
//!
//! ## Admission control
//!
//! At most `max_concurrent` queries execute at once; up to `queue_depth`
//! more wait (priority-ordered, FIFO within a priority) and anything
//! beyond that is rejected with a typed `overloaded` response carrying a
//! computed `retry_after_ms` hint. When the queue is full — or the
//! process memory watermark has tripped, which freezes queue growth — a
//! newcomer that outranks the lowest-priority waiter *displaces* it (the
//! victim gets the `overloaded` rejection) instead of being rejected
//! blindly, so load shedding drops the cheapest work first.
//!
//! ## Deadlines, cancellation, drain
//!
//! Every query carries a deadline (`timeout_ms`, capped by the daemon's
//! `default_timeout`) enforced by the engine's budget polling, plus a
//! per-query [`CancelToken`] registered with the service. A drain (SIGINT
//! or a `shutdown` request) stops *new* queries with a `draining` error,
//! lets running and queued ones finish, and — if they outlive
//! `drain_grace` — cancels their tokens so they return partial counts
//! within the engine's ≤ 100 ms cancel latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use light_core::{
    validate_query, CancelToken, EngineConfig, EngineVariant, Outcome, SharedAuxStore,
};
use light_parallel::{run_plan_parallel, ParallelConfig};
use light_pattern::{PatternGraph, Query};

use crate::batch::{BatchGate, BatchVerdict, MemberExec, MemberOutput, Ticket};
use crate::catalog::GraphCatalog;
use crate::json::ObjWriter;
use crate::plan_cache::{PlanCache, PlanKey};
use crate::protocol::{
    self, ErrorCode, QueryRequest, QueryResult, Request, SubscribeRequest, SubscriptionDelta,
    UpdateRequest, UpdateResult, WireOutcome,
};

/// Lock a mutex, recovering the data if a previous holder panicked.
///
/// Every service lock is held only across short, non-panicking critical
/// sections, so the guarded data is always consistent when a poison flag
/// is observed — the flag itself is the only damage, and clearing it is
/// what keeps one supervised panic from wedging every later query.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Condvar wait with the same poison recovery as [`lock_recover`].
fn wait_recover<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

/// Daemon-side service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queries executing at once (admission permits).
    pub max_concurrent: usize,
    /// Admitted-but-waiting bound; beyond it requests are `overloaded`.
    pub queue_depth: usize,
    /// Worker threads per query (total engine threads ≤
    /// `max_concurrent × threads_per_query`; clients may request fewer).
    pub threads_per_query: usize,
    /// Deadline applied when a query sends none; also the cap on
    /// client-requested deadlines. `None` = unbounded.
    pub default_timeout: Option<Duration>,
    /// How long a drain waits before cancelling in-flight queries.
    pub drain_grace: Duration,
    /// How long a connection may sit on a partially received request line
    /// before the transport hangs up (slowloris guard). `None` disables.
    pub idle_timeout: Option<Duration>,
    /// Process resident-memory watermark, bytes. While resident memory is
    /// above it, the admission queue stops growing: new work is admitted
    /// only by displacing lower-priority queued work. `None` disables.
    pub mem_watermark: Option<u64>,
    /// Base engine configuration (variant, kernel, δ, aux-cache knobs).
    /// Per-query fields (budget, cancel, metrics) are overwritten.
    pub engine: EngineConfig,
    /// Kill-switch: run every query with the flat (topology-blind)
    /// scheduler — no pinning, round-robin steal victims. The CLI's
    /// `--flat-topology` flag sets this; `LIGHT_FLAT_TOPOLOGY=1` forces
    /// it process-wide regardless.
    pub flat_topology: bool,
    /// Multi-query batch collection window: an admitted query on graph G
    /// waits this long for concurrent queries on G to join its shared
    /// pass (DESIGN.md §16). `None` disables batching; `LIGHT_MQO=0`
    /// disables it at runtime regardless. Bounds the worst-case latency a
    /// lone query pays for batching.
    pub batch_window: Option<Duration>,
    /// Maintain a per-graph cross-query [`SharedAuxStore`] so concurrent
    /// (even non-batchable) queries reuse each other's trimmed-adjacency
    /// tables. `--no-shared-aux` clears it.
    pub shared_aux: bool,
    /// Fold a mutated entry's delta overlay into a fresh base (rewriting
    /// the backing snapshot, for snapshot-loaded graphs) once it holds
    /// this many pending edges. `None` compacts only on explicit
    /// `"compact":true` requests.
    pub compact_threshold: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_concurrent: 2,
            queue_depth: 4,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(60)),
            drain_grace: Duration::from_secs(10),
            idle_timeout: Some(Duration::from_secs(30)),
            mem_watermark: None,
            engine: EngineConfig::light(),
            flat_topology: false,
            batch_window: Some(Duration::from_millis(2)),
            shared_aux: true,
            compact_threshold: Some(32_768),
        }
    }
}

/// Why admission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Queries executing when the request was rejected.
    pub in_flight: usize,
    /// Queries waiting when the request was rejected.
    pub queued: usize,
    /// True when this request was queued and then displaced by a
    /// higher-priority arrival (load shedding), rather than rejected on
    /// arrival.
    pub shed: bool,
}

/// One queued admission request.
struct Waiter {
    seq: u64,
    priority: u8,
    shed: bool,
}

struct AdmissionState {
    running: usize,
    next_seq: u64,
    waiters: Vec<Waiter>,
}

/// Counting semaphore with a bounded, priority-aware wait queue.
///
/// Waiters are granted permits highest-priority-first (FIFO within a
/// priority). When the queue is at capacity — or capacity is frozen by
/// the memory watermark — a newcomer with strictly higher priority
/// displaces the lowest-priority (youngest among ties) waiter.
struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    max_concurrent: usize,
    queue_depth: usize,
}

impl Admission {
    fn new(max_concurrent: usize, queue_depth: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState {
                running: 0,
                next_seq: 0,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            queue_depth,
        }
    }

    /// The waiter next in line for a permit: highest priority, oldest seq.
    fn pick(st: &AdmissionState) -> Option<u64> {
        st.waiters
            .iter()
            .filter(|w| !w.shed)
            .max_by(|a, b| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)))
            .map(|w| w.seq)
    }

    /// Acquire an execution permit, blocking in the bounded queue if the
    /// service is saturated. Returns the queue wait on success.
    ///
    /// `freeze_queue` (the memory watermark tripped) caps the queue at
    /// its *current* occupancy: new work gets in only by displacement.
    fn acquire(&self, priority: u8, freeze_queue: bool) -> Result<Duration, Overloaded> {
        let mut st = lock_recover(&self.state);
        if st.running < self.max_concurrent && st.waiters.iter().all(|w| w.shed) {
            st.running += 1;
            return Ok(Duration::ZERO);
        }
        let occupancy = st.waiters.iter().filter(|w| !w.shed).count();
        let cap = if freeze_queue {
            occupancy.min(self.queue_depth)
        } else {
            self.queue_depth
        };
        if occupancy >= cap {
            // Queue full (or frozen): shed the lowest-priority waiter if
            // the newcomer strictly outranks it, else reject the newcomer.
            let victim = st
                .waiters
                .iter_mut()
                .filter(|w| !w.shed)
                .min_by(|a, b| a.priority.cmp(&b.priority).then(b.seq.cmp(&a.seq)));
            match victim {
                Some(v) if v.priority < priority => {
                    v.shed = true;
                    self.cv.notify_all();
                }
                _ => {
                    return Err(Overloaded {
                        in_flight: st.running,
                        queued: occupancy,
                        shed: false,
                    })
                }
            }
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.waiters.push(Waiter {
            seq,
            priority,
            shed: false,
        });
        let start = Instant::now();
        loop {
            let me = st
                .waiters
                .iter()
                .position(|w| w.seq == seq)
                .expect("waiter entry must outlive its thread");
            if st.waiters[me].shed {
                st.waiters.remove(me);
                let (running, queued) = (st.running, st.waiters.iter().filter(|w| !w.shed).count());
                return Err(Overloaded {
                    in_flight: running,
                    queued,
                    shed: true,
                });
            }
            if st.running < self.max_concurrent && Self::pick(&st) == Some(seq) {
                st.waiters.remove(me);
                st.running += 1;
                return Ok(start.elapsed());
            }
            st = wait_recover(&self.cv, st);
        }
    }

    fn release(&self) {
        let mut st = lock_recover(&self.state);
        st.running -= 1;
        drop(st);
        // notify_all, not notify_one: the permit goes to whichever waiter
        // `pick` chooses, which is not necessarily the longest sleeper.
        self.cv.notify_all();
    }

    fn in_flight(&self) -> usize {
        lock_recover(&self.state).running
    }

    fn queued(&self) -> usize {
        lock_recover(&self.state)
            .waiters
            .iter()
            .filter(|w| !w.shed)
            .count()
    }
}

/// Releases the admission permit even if the query panics mid-flight.
struct PermitGuard<'a>(&'a Admission);

impl Drop for PermitGuard<'_> {
    fn drop(&mut self) {
        self.0.release();
    }
}

/// Deregisters the query's cancel token even if the query panics.
struct LiveGuard<'a> {
    svc: &'a QueryService,
    token: CancelToken,
}

impl Drop for LiveGuard<'_> {
    fn drop(&mut self) {
        let mut live = lock_recover(&self.svc.live);
        live.retain(|t| !same_token(t, &self.token));
    }
}

/// Aggregate service counters (all monotonic except the gauges derived
/// from admission state). Lock-free: handlers bump atomics.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Query requests that reached admission (well-formed `query` ops).
    pub queries: AtomicU64,
    /// Complete results.
    pub ok: AtomicU64,
    /// Partial results (timeout / cancelled / memory / contained panics).
    pub partial: AtomicU64,
    /// Typed error responses (bad request, unknown graph, draining, ...).
    pub errors: AtomicU64,
    /// Admission-control rejections.
    pub overloaded: AtomicU64,
    /// Queued queries displaced by higher-priority arrivals (a subset of
    /// `overloaded`).
    pub shed: AtomicU64,
    /// Supervised panics converted into `internal_error` responses
    /// (service-layer queries plus reactor-contained connection faults).
    pub panics: AtomicU64,
    /// Partial results that were specifically deadline expiries.
    pub timeouts: AtomicU64,
    /// Partial results that were cancellations (drain grace).
    pub cancelled: AtomicU64,
    /// Queries that waited in the admission queue at all.
    pub queued_queries: AtomicU64,
    /// Total queue wait, nanoseconds.
    pub queue_wait_ns: AtomicU64,
    /// Maximum single queue wait, nanoseconds.
    pub queue_wait_max_ns: AtomicU64,
    /// Total matches returned (completeness-weighted traffic volume).
    pub matches_returned: AtomicU64,
    /// Non-query ops served (ping/stats/catalog/health/shutdown).
    pub control_ops: AtomicU64,
    /// Committed `update` batches across all graphs.
    pub updates: AtomicU64,
    /// Total engine execution time, nanoseconds (feeds `retry_after_ms`).
    pub exec_ns: AtomicU64,
    /// Queries whose engine run finished (denominator for `exec_ns`).
    pub exec_done: AtomicU64,
    /// Milliseconds-since-service-start stamp of the most recent
    /// handler activity (heartbeat for the `health` liveness signal).
    pub last_activity_ms: AtomicU64,
}

impl ServiceMetrics {
    fn note_queue_wait(&self, wait: Duration) {
        if wait.is_zero() {
            return;
        }
        let ns = wait.as_nanos() as u64;
        self.queued_queries.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.queue_wait_max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a supervised panic (used by the transports too, so every
    /// containment shows up in one monotone counter).
    pub fn note_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// Process resident set size in bytes (Linux `/proc/self/statm`; `None`
/// elsewhere — the watermark degrades to disabled off-Linux).
pub fn resident_memory_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
        let pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
        Some(pages * 4096)
    }
    #[cfg(not(target_os = "linux"))]
    None
}

/// Render a panic payload for the `internal_error` response.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The resident query service.
pub struct QueryService {
    catalog: GraphCatalog,
    plans: PlanCache,
    cfg: ServeConfig,
    admission: Admission,
    /// Service-level counters, exported by `stats`.
    pub metrics: ServiceMetrics,
    /// Long-lived engine recorder attached to every query: aggregate
    /// COMP/MAT/setops/scheduler metrics across the daemon's lifetime
    /// flow through the standard `light-metrics` pipeline (active only
    /// when the `metrics` feature is compiled in).
    recorder: light_metrics::Recorder,
    /// Drain signal shared with the signal handler / listener threads.
    shutdown: CancelToken,
    /// Cancel tokens of in-flight queries (drain-grace enforcement).
    live: Mutex<Vec<CancelToken>>,
    /// Generation counter so stale tokens can be pruned cheaply.
    started: Instant,
    /// Multi-query batch gate (DESIGN.md §16). Always present; whether
    /// queries visit it is decided by `mqo`.
    batch: BatchGate,
    /// Per-graph cross-query aux stores, `(catalog name, store)`. The
    /// catalog is immutable after startup, so a flat vector suffices.
    shared_aux: Vec<(String, Arc<SharedAuxStore>)>,
    /// Batching enabled: a window is configured and `LIGHT_MQO` ≠ "0"
    /// (the env kill-switch is read once at construction).
    mqo: bool,
    /// Maintained per-(pattern, graph) counts (`subscribe` op) plus the
    /// next subscription id. The lock is held across the whole update op
    /// — subscription maintenance, generation reads, and registration are
    /// thereby serialized against each other, so a maintained count can
    /// never straddle a concurrent batch.
    subs: Mutex<SubRegistry>,
}

/// One maintained count: the raw (symmetry-off) embedding total, updated
/// differentially on every batch; the reduced count reported to clients
/// is `raw / aut`.
#[derive(Debug, Clone)]
struct Subscription {
    id: u64,
    graph: String,
    /// Pattern spec as the client sent it (echoed back on updates).
    spec: String,
    pattern: PatternGraph,
    /// `|Aut(P)|` — raw-to-reduced ratio, computed at registration.
    aut: u64,
    /// Maintained raw embedding count.
    raw: u64,
    /// Entry generation the count is valid for.
    generation: u64,
}

/// The subscription table plus its id counter.
#[derive(Debug, Default)]
struct SubRegistry {
    next_id: u64,
    entries: Vec<Subscription>,
}

impl QueryService {
    /// Build a service over a loaded catalog.
    pub fn new(catalog: GraphCatalog, cfg: ServeConfig) -> QueryService {
        // One cross-query aux store per graph. The watermark mirrors the
        // engine's per-query budget: with no explicit limit the store
        // stays bounded structurally (fixed slot count).
        let shared_aux: Vec<(String, Arc<SharedAuxStore>)> = if cfg.shared_aux {
            catalog
                .entries()
                .iter()
                .map(|e| {
                    (
                        e.name.clone(),
                        Arc::new(SharedAuxStore::new(cfg.engine.max_memory_bytes)),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let mqo =
            cfg.batch_window.is_some() && std::env::var("LIGHT_MQO").map_or(true, |v| v != "0");
        QueryService {
            admission: Admission::new(cfg.max_concurrent, cfg.queue_depth),
            plans: PlanCache::new(),
            metrics: ServiceMetrics::default(),
            recorder: light_metrics::Recorder::new(),
            shutdown: CancelToken::new(),
            live: Mutex::new(Vec::new()),
            started: Instant::now(),
            batch: BatchGate::default(),
            shared_aux,
            mqo,
            subs: Mutex::new(SubRegistry::default()),
            catalog,
            cfg,
        }
    }

    /// The cross-query aux store for a graph, if the shared tier is on.
    fn shared_store(&self, graph: &str) -> Option<&Arc<SharedAuxStore>> {
        self.shared_aux
            .iter()
            .find(|(n, _)| n == graph)
            .map(|(_, s)| s)
    }

    /// The shared drain token: cancel it to start a graceful drain. The
    /// CLI wires SIGINT to this; the `shutdown` op cancels it too.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shutdown.is_cancelled()
    }

    /// Queries currently executing.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }

    /// The catalog this service answers from.
    pub fn catalog(&self) -> &GraphCatalog {
        &self.catalog
    }

    /// The plan cache (counters feed `stats`).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Cancel every in-flight query (drain-grace expiry). Returns how many
    /// tokens were cancelled.
    pub fn cancel_in_flight(&self) -> usize {
        let live = lock_recover(&self.live);
        for t in live.iter() {
            t.cancel();
        }
        live.len()
    }

    /// Whether the memory watermark has tripped (freezes queue growth).
    pub fn memory_tripped(&self) -> bool {
        match (self.cfg.mem_watermark, resident_memory_bytes()) {
            (Some(limit), Some(resident)) => resident > limit,
            _ => false,
        }
    }

    /// The backoff hint attached to `overloaded` rejections: roughly how
    /// long until a queue slot frees up, from the average engine run time
    /// and the current backlog per execution lane.
    pub fn retry_after_ms(&self) -> u64 {
        let done = self.metrics.exec_done.load(Ordering::Relaxed);
        let avg_ms = (self.metrics.exec_ns.load(Ordering::Relaxed) / 1_000_000)
            .checked_div(done)
            .map_or(50, |ms| ms.max(1));
        let backlog = self.admission.queued() as u64 + 1;
        (backlog * avg_ms / self.cfg.max_concurrent.max(1) as u64).clamp(25, 30_000)
    }

    /// Handle one request line, producing exactly one response line
    /// (without trailing newline). Never panics on untrusted input: the
    /// query path runs supervised, so even an engine bug yields a typed
    /// `internal_error` response instead of unwinding the transport.
    pub fn handle_line(&self, line: &str) -> String {
        self.stamp_activity();
        let resp = self.handle_line_inner(line);
        self.stamp_activity();
        resp
    }

    fn stamp_activity(&self) {
        self.metrics
            .last_activity_ms
            .store(self.started.elapsed().as_millis() as u64, Ordering::Relaxed);
    }

    fn handle_line_inner(&self, line: &str) -> String {
        let req = match protocol::parse_request(line.trim()) {
            Ok(r) => r,
            Err((id, code, msg)) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                return protocol::render_error(&id, code, &msg);
            }
        };
        match req {
            Request::Ping { id } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                protocol::render_pong(&id)
            }
            Request::Shutdown { id } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                self.shutdown.cancel();
                protocol::render_shutdown_ack(&id)
            }
            Request::Catalog { id } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                // The catalog op re-checks backing files, same as health:
                // a truncated snapshot flips its entry before it is listed.
                self.catalog.check_health();
                let entries: Vec<String> = self
                    .catalog
                    .entries()
                    .iter()
                    .map(protocol::render_catalog_entry)
                    .collect();
                protocol::render_catalog(&id, &entries)
            }
            Request::Stats { id, engine } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                self.render_stats(&id, engine)
            }
            Request::Health { id } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                self.render_health(&id)
            }
            Request::Query(q) => {
                // Supervision boundary: a panic anywhere in the query path
                // (admission, resolve, plan build, engine) is converted to
                // a typed response. RAII guards inside `execute` release
                // the permit and deregister the cancel token on unwind,
                // and every service lock recovers from poison, so the
                // daemon state is intact for the next query.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.execute(&q))) {
                    Ok(resp) => resp,
                    Err(payload) => {
                        self.metrics.note_panic();
                        protocol::render_internal(
                            &q.id,
                            &panic_message(payload),
                            &[
                                ("graph", q.graph.as_deref().unwrap_or("<default>")),
                                ("pattern", &q.pattern),
                            ],
                        )
                    }
                }
            }
            Request::Update(u) => {
                // Same supervision as queries: the update path is
                // transactional (nothing commits before the catalog
                // entry's write-lock swap), so a contained panic —
                // including an armed `serve::update_apply` failpoint —
                // leaves the old generation serving.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.apply_update_op(&u)
                })) {
                    Ok(resp) => resp,
                    Err(payload) => {
                        self.metrics.note_panic();
                        protocol::render_internal(
                            &u.id,
                            &panic_message(payload),
                            &[
                                ("graph", u.graph.as_deref().unwrap_or("<default>")),
                                ("op", "update"),
                            ],
                        )
                    }
                }
            }
            Request::Subscribe(s) => {
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.subscribe_op(&s)
                })) {
                    Ok(resp) => resp,
                    Err(payload) => {
                        self.metrics.note_panic();
                        protocol::render_internal(
                            &s.id,
                            &panic_message(payload),
                            &[
                                ("graph", s.graph.as_deref().unwrap_or("<default>")),
                                ("pattern", &s.pattern),
                                ("op", "subscribe"),
                            ],
                        )
                    }
                }
            }
            Request::Unsubscribe { id, sub } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                let mut subs = lock_recover(&self.subs);
                let before = subs.entries.len();
                subs.entries.retain(|s| s.id != sub);
                protocol::render_unsubscribed(&id, sub, subs.entries.len() < before)
            }
        }
    }

    /// Resolve a request's graph name (or the sole entry) to its catalog
    /// entry.
    fn resolve_entry(
        &self,
        graph: &Option<String>,
    ) -> Result<&crate::catalog::CatalogEntry, (ErrorCode, String)> {
        match graph {
            Some(name) => self.catalog.get(name).ok_or_else(|| {
                (
                    ErrorCode::UnknownGraph,
                    format!("no graph {name:?} in the catalog (try \"op\":\"catalog\")"),
                )
            }),
            None => self.catalog.sole_entry().ok_or_else(|| {
                (
                    ErrorCode::BadRequest,
                    format!(
                        "\"graph\" is required on a {}-graph daemon",
                        self.catalog.len()
                    ),
                )
            }),
        }
    }

    /// Apply one `update` batch: mutate the catalog entry, invalidate the
    /// cross-query cache tiers, and differentially maintain every
    /// subscribed count on the graph.
    fn apply_update_op(&self, u: &UpdateRequest) -> String {
        let err = |code: ErrorCode, msg: String| {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            protocol::render_error(&u.id, code, &msg)
        };
        if self.is_draining() {
            return err(
                ErrorCode::Draining,
                "service is draining; no new updates accepted".into(),
            );
        }
        let entry = match self.resolve_entry(&u.graph) {
            Ok(e) => e,
            Err((code, msg)) => return err(code, msg),
        };
        if !entry.check_health() {
            return err(
                ErrorCode::GraphUnhealthy,
                format!(
                    "graph {:?}: backing snapshot {} shrank or was replaced on disk; \
                     updates refused",
                    entry.name, entry.source
                ),
            );
        }
        let t = Instant::now();
        // Hold the registry lock across apply + maintenance: update
        // batches are serialized against each other and against
        // registrations, so every maintained count sees every batch
        // exactly once, in commit order.
        let mut subs = lock_recover(&self.subs);
        let out = match entry.apply_update(
            &u.deletes,
            &u.inserts,
            self.cfg.compact_threshold,
            u.compact,
        ) {
            Ok(o) => o,
            Err(e) => {
                return err(
                    ErrorCode::Internal,
                    format!("update rejected; graph unchanged: {e}"),
                )
            }
        };
        self.metrics.updates.fetch_add(1, Ordering::Relaxed);
        // A mutated graph invalidates every cross-query cache tier: the
        // shared aux store drops its trimmed-adjacency tables (O(1)
        // generation bump), and the plan cache misses naturally because
        // its keys embed the entry generation. Per-entry `GraphStats`
        // were recomputed inside the commit.
        if let Some(store) = self.shared_store(&entry.name) {
            store.invalidate();
        }
        // Differential maintenance: count only the embeddings the batch
        // destroyed (in the pre graph) or created (in the post graph).
        let mut deltas = Vec::new();
        for sub in subs.entries.iter_mut().filter(|s| s.graph == entry.name) {
            let (destroyed, created) = light_core::raw_delta(
                &sub.pattern,
                &out.pre,
                &out.post,
                &out.report.deleted,
                &out.report.inserted,
                &self.cfg.engine,
            );
            sub.raw = (sub.raw + created).saturating_sub(destroyed);
            sub.generation = out.generation;
            deltas.push(SubscriptionDelta {
                sub: sub.id,
                pattern: sub.spec.clone(),
                count: sub.raw / sub.aut.max(1),
                destroyed,
                created,
            });
        }
        drop(subs);
        protocol::render_update(&UpdateResult {
            id: u.id.clone(),
            graph: entry.name.clone(),
            generation: out.generation,
            inserted: out.report.inserted.len() as u64,
            deleted: out.report.deleted.len() as u64,
            dup_inserts: out.report.dup_inserts as u64,
            missing_deletes: out.report.missing_deletes as u64,
            pending: out.pending as u64,
            compacted: out.compacted,
            elapsed_ms: t.elapsed().as_secs_f64() * 1e3,
            subscriptions: deltas,
        })
    }

    /// Register a maintained count: run the full count once, then keep it
    /// current differentially on every subsequent update.
    fn subscribe_op(&self, s: &SubscribeRequest) -> String {
        let err = |code: ErrorCode, msg: String| {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            protocol::render_error(&s.id, code, &msg)
        };
        if self.is_draining() {
            return err(
                ErrorCode::Draining,
                "service is draining; no new subscriptions accepted".into(),
            );
        }
        let entry = match self.resolve_entry(&s.graph) {
            Ok(e) => e,
            Err((code, msg)) => return err(code, msg),
        };
        if !entry.check_health() {
            return err(
                ErrorCode::GraphUnhealthy,
                format!(
                    "graph {:?}: backing snapshot {} shrank or was replaced on disk",
                    entry.name, entry.source
                ),
            );
        }
        let pattern = match parse_pattern(&s.pattern) {
            Ok(p) => p,
            Err(e) => return err(ErrorCode::BadPattern, e),
        };
        // Registration holds the registry lock across the initial full
        // count, so no update can commit between counting and enrolling —
        // the count is exact for the generation it records.
        let mut subs = lock_recover(&self.subs);
        let (graph, generation) = entry.view();
        if let Err(e) = validate_query(&pattern, graph.num_vertices()) {
            return err(ErrorCode::BadQuery, e.to_string());
        }
        let t = Instant::now();
        let report = light_core::run_query(&pattern, &graph, &self.cfg.engine);
        let aut = light_core::automorphism_count(&pattern);
        let id = subs.next_id;
        subs.next_id += 1;
        subs.entries.push(Subscription {
            id,
            graph: entry.name.clone(),
            spec: s.pattern.clone(),
            pattern,
            aut,
            raw: report.matches * aut,
            generation,
        });
        drop(subs);
        protocol::render_subscribed(
            &s.id,
            id,
            &entry.name,
            &s.pattern,
            generation,
            report.matches,
            t.elapsed().as_secs_f64() * 1e3,
        )
    }

    /// Resolve and run one query request end to end.
    fn execute(&self, q: &QueryRequest) -> String {
        let err = |code: ErrorCode, msg: String| {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            protocol::render_error(&q.id, code, &msg)
        };
        if self.is_draining() {
            return err(
                ErrorCode::Draining,
                "service is draining; no new queries accepted".into(),
            );
        }
        // Resolve inputs *before* consuming an admission slot: malformed
        // queries must not queue behind real work.
        light_failpoint::fail_point!("serve::catalog_resolve");
        let entry = match &q.graph {
            Some(name) => match self.catalog.get(name) {
                Some(e) => e,
                None => {
                    return err(
                        ErrorCode::UnknownGraph,
                        format!("no graph {name:?} in the catalog (try \"op\":\"catalog\")"),
                    )
                }
            },
            None => match self.catalog.sole_entry() {
                Some(e) => e,
                None => {
                    return err(
                        ErrorCode::BadRequest,
                        format!(
                            "\"graph\" is required on a {}-graph daemon",
                            self.catalog.len()
                        ),
                    )
                }
            },
        };
        if !entry.check_health() {
            return err(
                ErrorCode::GraphUnhealthy,
                format!(
                    "graph {:?}: backing snapshot {} shrank or was replaced on disk; \
                     restart the daemon or regenerate it with `light convert --to snapshot-v2`",
                    entry.name, entry.source
                ),
            );
        }
        let pattern = match parse_pattern(&q.pattern) {
            Ok(p) => p,
            Err(e) => return err(ErrorCode::BadPattern, e),
        };
        // One consistent (graph, generation) pair for the whole query:
        // the plan-cache key, planning statistics, and execution all see
        // the same view even if an update commits mid-query.
        let (graph, generation) = entry.view();
        if let Err(e) = validate_query(&pattern, graph.num_vertices()) {
            return err(ErrorCode::BadQuery, e.to_string());
        }
        let mut cfg = self.cfg.engine.clone();
        if let Some(v) = &q.variant {
            cfg.variant = match v.as_str() {
                "se" => EngineVariant::Se,
                "lm" => EngineVariant::Lm,
                "msc" => EngineVariant::Msc,
                "light" => EngineVariant::Light,
                other => return err(ErrorCode::BadRequest, format!("unknown variant {other:?}")),
            };
        }
        // Deadline: client value capped by the daemon default.
        let deadline = match (q.timeout_ms, self.cfg.default_timeout) {
            (Some(ms), Some(cap)) => Some(Duration::from_millis(ms).min(cap)),
            (Some(ms), None) => Some(Duration::from_millis(ms)),
            (None, cap) => cap,
        };
        cfg.time_budget = deadline;
        let threads = q
            .threads
            .unwrap_or(self.cfg.threads_per_query)
            .clamp(1, self.cfg.threads_per_query.max(1));

        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        light_failpoint::fail_point!("serve::admission");
        let queue_wait = match self.admission.acquire(q.priority, self.memory_tripped()) {
            Ok(w) => w,
            Err(ov) => {
                self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                if ov.shed {
                    self.metrics.shed.fetch_add(1, Ordering::Relaxed);
                }
                return protocol::render_overloaded(
                    &q.id,
                    ov.in_flight,
                    ov.queued,
                    self.cfg.max_concurrent,
                    self.retry_after_ms(),
                    ov.shed,
                );
            }
        };
        // RAII from here: the permit and the live-token registration are
        // released on *every* exit, including a panic unwinding through
        // the supervised region.
        let _permit = PermitGuard(&self.admission);
        self.metrics.note_queue_wait(queue_wait);

        // Per-query cancellation token, registered for drain-grace kills.
        let token = CancelToken::new();
        cfg.cancel = Some(token.clone());
        lock_recover(&self.live).push(token.clone());
        let _live = LiveGuard { svc: self, token };

        // Per-query recorder when profiling; the service recorder
        // otherwise, so engine metrics aggregate across queries.
        let profile_rec = q.profile.then(light_metrics::Recorder::new);
        cfg.metrics = profile_rec.clone().unwrap_or_else(|| self.recorder.clone());

        // Cross-query aux tier: every query on this graph (batched or
        // not) reads and feeds the same trimmed-adjacency store.
        if let Some(store) = self.shared_store(&entry.name) {
            cfg.shared_aux = Some(Arc::clone(store));
        }

        let key = PlanKey::new(&pattern, &entry.name, generation, &cfg);
        let (plan, cache_hit) = self.plans.get_or_build(key, || {
            light_failpoint::fail_point!("serve::plan_build");
            cfg.plan(&pattern, &graph)
        });

        let pcfg = ParallelConfig::new(threads).flat_topology(self.cfg.flat_topology);

        // Multi-query gate (DESIGN.md §16): batchable queries wait one
        // collection window for siblings on the same graph and run as one
        // shared pass. Profiled queries stay solo (their recorder is
        // per-query), and a Solo verdict — singleton window, compile
        // fallback, stalled leader — falls through to the ordinary path.
        if self.mqo && !q.profile {
            if let Some(window) = self.cfg.batch_window {
                let member = MemberExec {
                    plan: Arc::clone(&plan),
                    time_budget: deadline,
                    cancel: cfg.cancel.clone().expect("cancel token set above"),
                    threads,
                };
                let verdict = match self.batch.join(&entry.name, member) {
                    Ticket::Leader(grp) => {
                        // Per-member budget/cancel ride the member specs;
                        // the pass-wide config must not impose the
                        // leader's own deadline on its siblings.
                        let mut bcfg = cfg.clone();
                        bcfg.time_budget = None;
                        bcfg.cancel = None;
                        self.batch
                            .lead(&grp, &entry.name, &graph, window, &bcfg, &pcfg)
                    }
                    Ticket::Follower(grp, idx) => {
                        let cutoff = deadline.unwrap_or(Duration::from_secs(3600))
                            + window
                            + self.cfg.drain_grace
                            + Duration::from_secs(5);
                        self.batch.follow(&grp, idx, cutoff)
                    }
                };
                match verdict {
                    BatchVerdict::Ran(Ok(out)) => {
                        return self.render_batched(q, &out, &entry.name, queue_wait, cache_hit)
                    }
                    BatchVerdict::Ran(Err(msg)) => {
                        // Typed per-member containment: this member's slot
                        // of the shared pass panicked (or the whole pass
                        // did). Siblings are unaffected.
                        self.metrics.note_panic();
                        return protocol::render_internal(
                            &q.id,
                            &msg,
                            &[
                                ("graph", entry.name.as_str()),
                                ("pattern", &q.pattern),
                                ("batch", "member"),
                            ],
                        );
                    }
                    BatchVerdict::Solo => {}
                }
            }
        }

        let t_exec = Instant::now();
        let pr = run_plan_parallel(&plan, &graph, &cfg, &pcfg);
        let exec_ns = t_exec.elapsed().as_nanos() as u64;
        self.metrics.exec_ns.fetch_add(exec_ns, Ordering::Relaxed);
        self.metrics.exec_done.fetch_add(1, Ordering::Relaxed);

        let outcome = match pr.report.outcome {
            Outcome::OutOfTime => WireOutcome::Timeout,
            Outcome::Cancelled => WireOutcome::Cancelled,
            Outcome::MemoryExceeded => WireOutcome::MemoryExceeded,
            _ if !pr.failures.is_empty() => WireOutcome::PartialPanic,
            _ => WireOutcome::Complete,
        };
        match outcome {
            WireOutcome::Complete => self.metrics.ok.fetch_add(1, Ordering::Relaxed),
            WireOutcome::Timeout => {
                self.metrics.partial.fetch_add(1, Ordering::Relaxed);
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed)
            }
            WireOutcome::Cancelled => {
                self.metrics.partial.fetch_add(1, Ordering::Relaxed);
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed)
            }
            _ => self.metrics.partial.fetch_add(1, Ordering::Relaxed),
        };
        self.metrics
            .matches_returned
            .fetch_add(pr.report.matches, Ordering::Relaxed);

        protocol::render_result(&QueryResult {
            id: q.id.clone(),
            matches: pr.report.matches,
            outcome,
            elapsed_ms: pr.report.elapsed.as_secs_f64() * 1e3,
            queue_ms: queue_wait.as_secs_f64() * 1e3,
            plan_cache_hit: cache_hit,
            graph: entry.name.clone(),
            failures: pr.failures.len() as u64,
            batch_size: None,
            profile: profile_rec.map(|r| r.to_json()),
        })
    }

    /// Account and render one member's result from a shared batch pass.
    ///
    /// Per-member counters (ok/partial/timeout/cancelled/matches) are
    /// bumped by each member's own handler thread; the pass's execution
    /// time is recorded once, by the leader, so `retry_after_ms` keeps
    /// estimating wall time per execution lane rather than summing the
    /// same pass `k` times.
    fn render_batched(
        &self,
        q: &QueryRequest,
        out: &MemberOutput,
        graph: &str,
        queue_wait: Duration,
        cache_hit: bool,
    ) -> String {
        if out.leader {
            self.metrics
                .exec_ns
                .fetch_add(out.elapsed.as_nanos() as u64, Ordering::Relaxed);
            self.metrics.exec_done.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = match out.outcome {
            Outcome::OutOfTime => WireOutcome::Timeout,
            Outcome::Cancelled => WireOutcome::Cancelled,
            Outcome::MemoryExceeded => WireOutcome::MemoryExceeded,
            _ if out.failures > 0 => WireOutcome::PartialPanic,
            _ => WireOutcome::Complete,
        };
        match outcome {
            WireOutcome::Complete => self.metrics.ok.fetch_add(1, Ordering::Relaxed),
            WireOutcome::Timeout => {
                self.metrics.partial.fetch_add(1, Ordering::Relaxed);
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed)
            }
            WireOutcome::Cancelled => {
                self.metrics.partial.fetch_add(1, Ordering::Relaxed);
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed)
            }
            _ => self.metrics.partial.fetch_add(1, Ordering::Relaxed),
        };
        self.metrics
            .matches_returned
            .fetch_add(out.matches, Ordering::Relaxed);
        protocol::render_result(&QueryResult {
            id: q.id.clone(),
            matches: out.matches,
            outcome,
            elapsed_ms: out.elapsed.as_secs_f64() * 1e3,
            queue_ms: queue_wait.as_secs_f64() * 1e3,
            plan_cache_hit: cache_hit,
            graph: graph.to_string(),
            failures: out.failures,
            batch_size: Some(out.members as u64),
            profile: None,
        })
    }

    /// Render the `stats` response.
    fn render_stats(&self, id: &str, engine: bool) -> String {
        let m = &self.metrics;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);

        let mut queries = ObjWriter::new();
        queries
            .u64("total", ld(&m.queries))
            .u64("ok", ld(&m.ok))
            .u64("partial", ld(&m.partial))
            .u64("error", ld(&m.errors))
            .u64("overloaded", ld(&m.overloaded))
            .u64("shed", ld(&m.shed))
            .u64("panics_total", ld(&m.panics))
            .u64("timeout", ld(&m.timeouts))
            .u64("cancelled", ld(&m.cancelled))
            .u64("matches_returned", ld(&m.matches_returned))
            .u64("control_ops", ld(&m.control_ops))
            .u64("updates", ld(&m.updates));

        let mut queue = ObjWriter::new();
        queue
            .u64("waited", ld(&m.queued_queries))
            .f64("wait_ms_total", ld(&m.queue_wait_ns) as f64 / 1e6)
            .f64("wait_ms_max", ld(&m.queue_wait_max_ns) as f64 / 1e6)
            .u64("depth", self.admission.queued() as u64)
            .u64("limit", self.cfg.queue_depth as u64);

        let mut plans = ObjWriter::new();
        plans
            .u64("hits", self.plans.hits())
            .u64("misses", self.plans.misses())
            .f64("hit_rate", self.plans.hit_rate())
            .u64("entries", self.plans.len() as u64)
            .u64("evictions", self.plans.evictions());

        let mq = &self.batch.metrics;
        let hist: Vec<String> = mq
            .shared_depth_hist
            .iter()
            .map(|b| b.load(Ordering::Relaxed).to_string())
            .collect();
        let mut shared = ObjWriter::new();
        if self.shared_aux.is_empty() {
            shared.bool("enabled", false);
        } else {
            let mut sum = light_core::SharedAuxCounters::default();
            for (_, store) in &self.shared_aux {
                let c = store.counters();
                sum.hits += c.hits;
                sum.misses += c.misses;
                sum.stores += c.stores;
                sum.evictions += c.evictions;
                sum.bytes += c.bytes;
            }
            shared
                .bool("enabled", true)
                .u64("hits", sum.hits)
                .u64("misses", sum.misses)
                .u64("stores", sum.stores)
                .u64("evictions", sum.evictions)
                .u64("bytes", sum.bytes as u64);
        }
        let mut multiquery = ObjWriter::new();
        multiquery
            .bool("enabled", self.mqo)
            .f64(
                "window_ms",
                self.cfg.batch_window.map_or(0.0, |w| w.as_secs_f64() * 1e3),
            )
            .u64("batches", mq.batches.load(Ordering::Relaxed))
            .u64(
                "batched_members",
                mq.batched_members.load(Ordering::Relaxed),
            )
            .u64("singletons", mq.singletons.load(Ordering::Relaxed))
            .u64("fallbacks", mq.fallbacks.load(Ordering::Relaxed))
            .raw("shared_depth_hist", &format!("[{}]", hist.join(",")))
            .u64(
                "saved_intersections_est",
                mq.saved_intersections_est.load(Ordering::Relaxed),
            )
            .raw("shared_aux", &shared.finish());

        let mut w = ObjWriter::new();
        w.raw("id", id)
            .str("status", "ok")
            .f64("uptime_ms", self.started.elapsed().as_secs_f64() * 1e3)
            .u64("in_flight", self.in_flight() as u64)
            .u64("max_concurrent", self.cfg.max_concurrent as u64)
            .bool("draining", self.is_draining())
            .u64("graphs", self.catalog.len() as u64)
            .raw("queries", &queries.finish())
            .raw("queue", &queue.finish())
            .raw("plan_cache", &plans.finish())
            .raw("multiquery", &multiquery.finish());
        if engine {
            // The full light-metrics document ({"enabled": false} when the
            // feature is compiled out) — engine-side observability rides
            // the same recorder as `light count --profile`.
            w.raw("engine", &self.recorder.to_json());
        }
        w.finish()
    }

    /// Render the `health` response: readiness plus the signals an
    /// operator (or load balancer) needs to decide whether to route here.
    fn render_health(&self, id: &str) -> String {
        let (healthy, total) = self.catalog.check_health();
        let draining = self.is_draining();
        let ready = !draining && total > 0 && healthy == total;

        let mut catalog = ObjWriter::new();
        catalog
            .u64("graphs", total as u64)
            .u64("healthy", healthy as u64);

        let now_ms = self.started.elapsed().as_millis() as u64;
        let last = self.metrics.last_activity_ms.load(Ordering::Relaxed);
        let mut executor = ObjWriter::new();
        executor
            .u64("in_flight", self.in_flight() as u64)
            .u64("queued", self.admission.queued() as u64)
            .u64("queue_limit", self.cfg.queue_depth as u64)
            .u64("max_concurrent", self.cfg.max_concurrent as u64)
            .u64("last_activity_ms_ago", now_ms.saturating_sub(last))
            .u64("panics_total", self.metrics.panics.load(Ordering::Relaxed));

        let mut memory = ObjWriter::new();
        match resident_memory_bytes() {
            Some(b) => memory.u64("resident_bytes", b),
            None => memory.raw("resident_bytes", "null"),
        };
        match self.cfg.mem_watermark {
            Some(w) => memory.u64("watermark_bytes", w),
            None => memory.raw("watermark_bytes", "null"),
        };
        memory.bool("tripped", self.memory_tripped());

        let mut w = ObjWriter::new();
        w.raw("id", id)
            .str("status", "ok")
            .bool("ready", ready)
            .bool("draining", draining)
            .u64("retry_after_ms", self.retry_after_ms())
            .raw("catalog", &catalog.finish())
            .raw("executor", &executor.finish())
            .raw("memory", &memory.finish());
        w.finish()
    }
}

/// Identity comparison for cancel tokens via their shared flag allocation.
fn same_token(a: &CancelToken, b: &CancelToken) -> bool {
    a.ptr_eq(b)
}

/// Parse a pattern spec: catalog name (`P1`..`P7`, `triangle`) or explicit
/// edge list (`0-1,1-2,...`). Mirrors the `light count --pattern` parser.
pub fn parse_pattern(s: &str) -> Result<PatternGraph, String> {
    if let Some(q) = Query::parse(s) {
        Ok(q.pattern())
    } else {
        PatternGraph::parse(s)
    }
}

/// The in-flight gauge, queue depths, and counter snapshot used by tests
/// and the drain loop.
#[derive(Debug, Clone, Copy)]
pub struct ServiceSnapshot {
    /// Queries executing now.
    pub in_flight: usize,
    /// Queries waiting for a permit now.
    pub queued: usize,
}

impl QueryService {
    /// Current admission gauges.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            in_flight: self.admission.in_flight(),
            queued: self.admission.queued(),
        }
    }
}
