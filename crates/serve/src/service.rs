//! The query service: admission control, plan-cached execution, and
//! service metrics.
//!
//! One [`QueryService`] is shared (behind `Arc`) by every connection
//! handler; [`QueryService::handle_line`] is the single entry point that
//! turns a request line into a response line, so stdio, socket handlers,
//! and tests all exercise the identical path.
//!
//! ## Admission control
//!
//! At most `max_concurrent` queries execute at once; up to `queue_depth`
//! more wait (FIFO via condvar) and anything beyond that is rejected with
//! a typed `overloaded` response instead of oversubscribing the worker
//! pool — burst traffic degrades into fast rejections, not a thrashing
//! machine. Queue wait is measured per query and aggregated.
//!
//! ## Deadlines, cancellation, drain
//!
//! Every query carries a deadline (`timeout_ms`, capped by the daemon's
//! `default_timeout`) enforced by the engine's budget polling, plus a
//! per-query [`CancelToken`] registered with the service. A drain (SIGINT
//! or a `shutdown` request) stops *new* queries with a `draining` error,
//! lets running and queued ones finish, and — if they outlive
//! `drain_grace` — cancels their tokens so they return partial counts
//! within the engine's ≤ 100 ms cancel latency.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use light_core::{validate_query, CancelToken, EngineConfig, EngineVariant, Outcome};
use light_parallel::{run_plan_parallel, ParallelConfig};
use light_pattern::{PatternGraph, Query};

use crate::catalog::GraphCatalog;
use crate::json::ObjWriter;
use crate::plan_cache::{PlanCache, PlanKey};
use crate::protocol::{self, ErrorCode, QueryRequest, QueryResult, Request, WireOutcome};

/// Daemon-side service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queries executing at once (admission permits).
    pub max_concurrent: usize,
    /// Admitted-but-waiting bound; beyond it requests are `overloaded`.
    pub queue_depth: usize,
    /// Worker threads per query (total engine threads ≤
    /// `max_concurrent × threads_per_query`; clients may request fewer).
    pub threads_per_query: usize,
    /// Deadline applied when a query sends none; also the cap on
    /// client-requested deadlines. `None` = unbounded.
    pub default_timeout: Option<Duration>,
    /// How long a drain waits before cancelling in-flight queries.
    pub drain_grace: Duration,
    /// Base engine configuration (variant, kernel, δ, aux-cache knobs).
    /// Per-query fields (budget, cancel, metrics) are overwritten.
    pub engine: EngineConfig,
    /// Kill-switch: run every query with the flat (topology-blind)
    /// scheduler — no pinning, round-robin steal victims. The CLI's
    /// `--flat-topology` flag sets this; `LIGHT_FLAT_TOPOLOGY=1` forces
    /// it process-wide regardless.
    pub flat_topology: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_concurrent: 2,
            queue_depth: 4,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(60)),
            drain_grace: Duration::from_secs(10),
            engine: EngineConfig::light(),
            flat_topology: false,
        }
    }
}

/// Why admission failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overloaded {
    /// Queries executing when the request was rejected.
    pub in_flight: usize,
    /// Queries waiting when the request was rejected.
    pub queued: usize,
}

struct AdmissionState {
    running: usize,
    waiting: usize,
}

/// Counting semaphore with a bounded FIFO wait queue.
struct Admission {
    state: Mutex<AdmissionState>,
    cv: Condvar,
    max_concurrent: usize,
    queue_depth: usize,
}

impl Admission {
    fn new(max_concurrent: usize, queue_depth: usize) -> Admission {
        Admission {
            state: Mutex::new(AdmissionState {
                running: 0,
                waiting: 0,
            }),
            cv: Condvar::new(),
            max_concurrent: max_concurrent.max(1),
            queue_depth,
        }
    }

    /// Acquire an execution permit, blocking in the bounded queue if the
    /// service is saturated. Returns the queue wait on success.
    fn acquire(&self) -> Result<Duration, Overloaded> {
        let mut st = self.state.lock().unwrap();
        if st.running < self.max_concurrent {
            st.running += 1;
            return Ok(Duration::ZERO);
        }
        if st.waiting >= self.queue_depth {
            return Err(Overloaded {
                in_flight: st.running,
                queued: st.waiting,
            });
        }
        st.waiting += 1;
        let start = Instant::now();
        while st.running >= self.max_concurrent {
            st = self.cv.wait(st).unwrap();
        }
        st.waiting -= 1;
        st.running += 1;
        Ok(start.elapsed())
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.running -= 1;
        drop(st);
        self.cv.notify_one();
    }

    fn in_flight(&self) -> usize {
        self.state.lock().unwrap().running
    }

    fn queued(&self) -> usize {
        self.state.lock().unwrap().waiting
    }
}

/// Aggregate service counters (all monotonic except the gauges derived
/// from admission state). Lock-free: handlers bump atomics.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Query requests that reached admission (well-formed `query` ops).
    pub queries: AtomicU64,
    /// Complete results.
    pub ok: AtomicU64,
    /// Partial results (timeout / cancelled / memory / contained panics).
    pub partial: AtomicU64,
    /// Typed error responses (bad request, unknown graph, draining, ...).
    pub errors: AtomicU64,
    /// Admission-control rejections.
    pub overloaded: AtomicU64,
    /// Partial results that were specifically deadline expiries.
    pub timeouts: AtomicU64,
    /// Partial results that were cancellations (drain grace).
    pub cancelled: AtomicU64,
    /// Queries that waited in the admission queue at all.
    pub queued_queries: AtomicU64,
    /// Total queue wait, nanoseconds.
    pub queue_wait_ns: AtomicU64,
    /// Maximum single queue wait, nanoseconds.
    pub queue_wait_max_ns: AtomicU64,
    /// Total matches returned (completeness-weighted traffic volume).
    pub matches_returned: AtomicU64,
    /// Non-query ops served (ping/stats/catalog/shutdown).
    pub control_ops: AtomicU64,
}

impl ServiceMetrics {
    fn note_queue_wait(&self, wait: Duration) {
        if wait.is_zero() {
            return;
        }
        let ns = wait.as_nanos() as u64;
        self.queued_queries.fetch_add(1, Ordering::Relaxed);
        self.queue_wait_ns.fetch_add(ns, Ordering::Relaxed);
        self.queue_wait_max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// The resident query service.
pub struct QueryService {
    catalog: GraphCatalog,
    plans: PlanCache,
    cfg: ServeConfig,
    admission: Admission,
    /// Service-level counters, exported by `stats`.
    pub metrics: ServiceMetrics,
    /// Long-lived engine recorder attached to every query: aggregate
    /// COMP/MAT/setops/scheduler metrics across the daemon's lifetime
    /// flow through the standard `light-metrics` pipeline (active only
    /// when the `metrics` feature is compiled in).
    recorder: light_metrics::Recorder,
    /// Drain signal shared with the signal handler / listener threads.
    shutdown: CancelToken,
    /// Cancel tokens of in-flight queries (drain-grace enforcement).
    live: Mutex<Vec<CancelToken>>,
    /// Generation counter so stale tokens can be pruned cheaply.
    started: Instant,
}

impl QueryService {
    /// Build a service over a loaded catalog.
    pub fn new(catalog: GraphCatalog, cfg: ServeConfig) -> QueryService {
        QueryService {
            admission: Admission::new(cfg.max_concurrent, cfg.queue_depth),
            plans: PlanCache::new(),
            metrics: ServiceMetrics::default(),
            recorder: light_metrics::Recorder::new(),
            shutdown: CancelToken::new(),
            live: Mutex::new(Vec::new()),
            started: Instant::now(),
            catalog,
            cfg,
        }
    }

    /// The shared drain token: cancel it to start a graceful drain. The
    /// CLI wires SIGINT to this; the `shutdown` op cancels it too.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Whether a drain has been requested.
    pub fn is_draining(&self) -> bool {
        self.shutdown.is_cancelled()
    }

    /// Queries currently executing.
    pub fn in_flight(&self) -> usize {
        self.admission.in_flight()
    }

    /// The catalog this service answers from.
    pub fn catalog(&self) -> &GraphCatalog {
        &self.catalog
    }

    /// The plan cache (counters feed `stats`).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.plans
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Cancel every in-flight query (drain-grace expiry). Returns how many
    /// tokens were cancelled.
    pub fn cancel_in_flight(&self) -> usize {
        let live = self.live.lock().unwrap();
        for t in live.iter() {
            t.cancel();
        }
        live.len()
    }

    /// Handle one request line, producing exactly one response line
    /// (without trailing newline). Never panics on untrusted input.
    pub fn handle_line(&self, line: &str) -> String {
        let req = match protocol::parse_request(line.trim()) {
            Ok(r) => r,
            Err((id, code, msg)) => {
                self.metrics.errors.fetch_add(1, Ordering::Relaxed);
                return protocol::render_error(&id, code, &msg);
            }
        };
        match req {
            Request::Ping { id } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                protocol::render_pong(&id)
            }
            Request::Shutdown { id } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                self.shutdown.cancel();
                protocol::render_shutdown_ack(&id)
            }
            Request::Catalog { id } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                let entries: Vec<String> = self
                    .catalog
                    .entries()
                    .iter()
                    .map(protocol::render_catalog_entry)
                    .collect();
                protocol::render_catalog(&id, &entries)
            }
            Request::Stats { id, engine } => {
                self.metrics.control_ops.fetch_add(1, Ordering::Relaxed);
                self.render_stats(&id, engine)
            }
            Request::Query(q) => self.execute(&q),
        }
    }

    /// Resolve and run one query request end to end.
    fn execute(&self, q: &QueryRequest) -> String {
        let err = |code: ErrorCode, msg: String| {
            self.metrics.errors.fetch_add(1, Ordering::Relaxed);
            protocol::render_error(&q.id, code, &msg)
        };
        if self.is_draining() {
            return err(
                ErrorCode::Draining,
                "service is draining; no new queries accepted".into(),
            );
        }
        // Resolve inputs *before* consuming an admission slot: malformed
        // queries must not queue behind real work.
        let entry = match &q.graph {
            Some(name) => match self.catalog.get(name) {
                Some(e) => e,
                None => {
                    return err(
                        ErrorCode::UnknownGraph,
                        format!("no graph {name:?} in the catalog (try \"op\":\"catalog\")"),
                    )
                }
            },
            None => match self.catalog.sole_entry() {
                Some(e) => e,
                None => {
                    return err(
                        ErrorCode::BadRequest,
                        format!(
                            "\"graph\" is required on a {}-graph daemon",
                            self.catalog.len()
                        ),
                    )
                }
            },
        };
        let pattern = match parse_pattern(&q.pattern) {
            Ok(p) => p,
            Err(e) => return err(ErrorCode::BadPattern, e),
        };
        if let Err(e) = validate_query(&pattern, entry.graph.num_vertices()) {
            return err(ErrorCode::BadQuery, e.to_string());
        }
        let mut cfg = self.cfg.engine.clone();
        if let Some(v) = &q.variant {
            cfg.variant = match v.as_str() {
                "se" => EngineVariant::Se,
                "lm" => EngineVariant::Lm,
                "msc" => EngineVariant::Msc,
                "light" => EngineVariant::Light,
                other => return err(ErrorCode::BadRequest, format!("unknown variant {other:?}")),
            };
        }
        // Deadline: client value capped by the daemon default.
        let deadline = match (q.timeout_ms, self.cfg.default_timeout) {
            (Some(ms), Some(cap)) => Some(Duration::from_millis(ms).min(cap)),
            (Some(ms), None) => Some(Duration::from_millis(ms)),
            (None, cap) => cap,
        };
        cfg.time_budget = deadline;
        let threads = q
            .threads
            .unwrap_or(self.cfg.threads_per_query)
            .clamp(1, self.cfg.threads_per_query.max(1));

        self.metrics.queries.fetch_add(1, Ordering::Relaxed);
        let queue_wait = match self.admission.acquire() {
            Ok(w) => w,
            Err(ov) => {
                self.metrics.overloaded.fetch_add(1, Ordering::Relaxed);
                return protocol::render_overloaded(
                    &q.id,
                    ov.in_flight,
                    ov.queued,
                    self.cfg.max_concurrent,
                );
            }
        };
        self.metrics.note_queue_wait(queue_wait);

        // Per-query cancellation token, registered for drain-grace kills.
        let token = CancelToken::new();
        cfg.cancel = Some(token.clone());
        self.live.lock().unwrap().push(token.clone());

        // Per-query recorder when profiling; the service recorder
        // otherwise, so engine metrics aggregate across queries.
        let profile_rec = q.profile.then(light_metrics::Recorder::new);
        cfg.metrics = profile_rec.clone().unwrap_or_else(|| self.recorder.clone());

        let key = PlanKey::new(&pattern, &entry.name, &cfg);
        let (plan, cache_hit) = self
            .plans
            .get_or_build(key, || cfg.plan(&pattern, &entry.graph));

        let pcfg = ParallelConfig::new(threads).flat_topology(self.cfg.flat_topology);
        let pr = run_plan_parallel(&plan, &entry.graph, &cfg, &pcfg);

        self.admission.release();
        {
            let mut live = self.live.lock().unwrap();
            live.retain(|t| !same_token(t, &token));
        }

        let outcome = match pr.report.outcome {
            Outcome::OutOfTime => WireOutcome::Timeout,
            Outcome::Cancelled => WireOutcome::Cancelled,
            Outcome::MemoryExceeded => WireOutcome::MemoryExceeded,
            _ if !pr.failures.is_empty() => WireOutcome::PartialPanic,
            _ => WireOutcome::Complete,
        };
        match outcome {
            WireOutcome::Complete => self.metrics.ok.fetch_add(1, Ordering::Relaxed),
            WireOutcome::Timeout => {
                self.metrics.partial.fetch_add(1, Ordering::Relaxed);
                self.metrics.timeouts.fetch_add(1, Ordering::Relaxed)
            }
            WireOutcome::Cancelled => {
                self.metrics.partial.fetch_add(1, Ordering::Relaxed);
                self.metrics.cancelled.fetch_add(1, Ordering::Relaxed)
            }
            _ => self.metrics.partial.fetch_add(1, Ordering::Relaxed),
        };
        self.metrics
            .matches_returned
            .fetch_add(pr.report.matches, Ordering::Relaxed);

        protocol::render_result(&QueryResult {
            id: q.id.clone(),
            matches: pr.report.matches,
            outcome,
            elapsed_ms: pr.report.elapsed.as_secs_f64() * 1e3,
            queue_ms: queue_wait.as_secs_f64() * 1e3,
            plan_cache_hit: cache_hit,
            graph: entry.name.clone(),
            failures: pr.failures.len() as u64,
            profile: profile_rec.map(|r| r.to_json()),
        })
    }

    /// Render the `stats` response.
    fn render_stats(&self, id: &str, engine: bool) -> String {
        let m = &self.metrics;
        let ld = |a: &AtomicU64| a.load(Ordering::Relaxed);

        let mut queries = ObjWriter::new();
        queries
            .u64("total", ld(&m.queries))
            .u64("ok", ld(&m.ok))
            .u64("partial", ld(&m.partial))
            .u64("error", ld(&m.errors))
            .u64("overloaded", ld(&m.overloaded))
            .u64("timeout", ld(&m.timeouts))
            .u64("cancelled", ld(&m.cancelled))
            .u64("matches_returned", ld(&m.matches_returned))
            .u64("control_ops", ld(&m.control_ops));

        let mut queue = ObjWriter::new();
        queue
            .u64("waited", ld(&m.queued_queries))
            .f64("wait_ms_total", ld(&m.queue_wait_ns) as f64 / 1e6)
            .f64("wait_ms_max", ld(&m.queue_wait_max_ns) as f64 / 1e6)
            .u64("depth", self.admission.queued() as u64)
            .u64("limit", self.cfg.queue_depth as u64);

        let mut plans = ObjWriter::new();
        plans
            .u64("hits", self.plans.hits())
            .u64("misses", self.plans.misses())
            .f64("hit_rate", self.plans.hit_rate())
            .u64("entries", self.plans.len() as u64)
            .u64("evictions", self.plans.evictions());

        let mut w = ObjWriter::new();
        w.raw("id", id)
            .str("status", "ok")
            .f64("uptime_ms", self.started.elapsed().as_secs_f64() * 1e3)
            .u64("in_flight", self.in_flight() as u64)
            .u64("max_concurrent", self.cfg.max_concurrent as u64)
            .bool("draining", self.is_draining())
            .u64("graphs", self.catalog.len() as u64)
            .raw("queries", &queries.finish())
            .raw("queue", &queue.finish())
            .raw("plan_cache", &plans.finish());
        if engine {
            // The full light-metrics document ({"enabled": false} when the
            // feature is compiled out) — engine-side observability rides
            // the same recorder as `light count --profile`.
            w.raw("engine", &self.recorder.to_json());
        }
        w.finish()
    }
}

/// Identity comparison for cancel tokens via their shared flag allocation.
fn same_token(a: &CancelToken, b: &CancelToken) -> bool {
    a.ptr_eq(b)
}

/// Parse a pattern spec: catalog name (`P1`..`P7`, `triangle`) or explicit
/// edge list (`0-1,1-2,...`). Mirrors the `light count --pattern` parser.
pub fn parse_pattern(s: &str) -> Result<PatternGraph, String> {
    if let Some(q) = Query::parse(s) {
        Ok(q.pattern())
    } else {
        PatternGraph::parse(s)
    }
}

/// The in-flight gauge, queue depths, and counter snapshot used by tests
/// and the drain loop.
#[derive(Debug, Clone, Copy)]
pub struct ServiceSnapshot {
    /// Queries executing now.
    pub in_flight: usize,
    /// Queries waiting for a permit now.
    pub queued: usize,
}

impl QueryService {
    /// Current admission gauges.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            in_flight: self.admission.in_flight(),
            queued: self.admission.queued(),
        }
    }
}
