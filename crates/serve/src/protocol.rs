//! The serve wire protocol: newline-delimited JSON, one request per line,
//! one response line per request, in order.
//!
//! See `docs/serve.md` for the field reference. The protocol is
//! deliberately flat and versioned by field presence, not negotiation:
//! unknown request fields are ignored, unknown ops are a typed error, and
//! every response carries a `status` from a closed set —
//! `ok` | `partial` | `error` | `overloaded` — so clients can dispatch
//! without guessing.
//!
//! Requests:
//!
//! ```text
//! {"op":"query","pattern":"P2","graph":"yt","id":1,"priority":5,
//!  "timeout_ms":5000,"threads":4,"variant":"light","profile":false}
//! {"op":"stats","engine":false}
//! {"op":"catalog"}
//! {"op":"health"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! `id` is echoed verbatim on the response (any JSON scalar); requests
//! without one get `"id":null`. `overloaded` responses carry a computed
//! `retry_after_ms` backoff hint; `internal_error` responses (a supervised
//! panic) echo the id plus the graph/pattern context of the query that
//! tripped it.

use crate::json::{Json, ObjWriter};

/// Upper bound on one request line. Far beyond any legitimate request
/// (patterns are ≤ 8 vertices); a client streaming an unbounded "line"
/// must not buffer the daemon to death.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Machine-readable error codes (the `code` field of error responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON / not an object / missing or bad fields.
    BadRequest,
    /// `op` was not one of the known operations.
    UnknownOp,
    /// `graph` named nothing in the catalog.
    UnknownGraph,
    /// `pattern` did not parse as a catalog name or edge list.
    BadPattern,
    /// The query was structurally invalid for the target graph.
    BadQuery,
    /// The daemon is draining and accepts no new queries.
    Draining,
    /// The graph's backing snapshot shrank or was replaced on disk; the
    /// mapping can no longer be read safely (SIGBUS guard).
    GraphUnhealthy,
    /// Internal failure (a supervised panic; always a bug, never fatal).
    Internal,
}

impl ErrorCode {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownGraph => "unknown_graph",
            ErrorCode::BadPattern => "bad_pattern",
            ErrorCode::BadQuery => "bad_query",
            ErrorCode::Draining => "draining",
            ErrorCode::GraphUnhealthy => "graph_unhealthy",
            ErrorCode::Internal => "internal_error",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a pattern query (the workhorse).
    Query(QueryRequest),
    /// Service + engine metrics snapshot.
    Stats {
        /// Echoed request id (rendered form).
        id: String,
        /// Include the full `light-metrics` recorder document.
        engine: bool,
    },
    /// List resident graphs with their precomputed stats.
    Catalog {
        /// Echoed request id (rendered form).
        id: String,
    },
    /// Readiness + liveness report (catalog health, executor heartbeat,
    /// queue depth, memory watermark).
    Health {
        /// Echoed request id (rendered form).
        id: String,
    },
    /// Liveness probe.
    Ping {
        /// Echoed request id (rendered form).
        id: String,
    },
    /// Begin a graceful drain (same path as SIGINT).
    Shutdown {
        /// Echoed request id (rendered form).
        id: String,
    },
}

/// Fields of a `query` request.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Echoed request id (rendered JSON scalar; `"null"` when absent).
    pub id: String,
    /// Pattern: `P1`..`P7`, `triangle`, or an `a-b,c-d` edge list.
    pub pattern: String,
    /// Catalog graph name; `None` defers to the daemon's sole graph.
    pub graph: Option<String>,
    /// Per-query deadline override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Worker threads for this query (capped by the daemon).
    pub threads: Option<usize>,
    /// Engine variant override (`se`|`lm`|`msc`|`light`).
    pub variant: Option<String>,
    /// Attach a per-query metrics recorder and return its JSON document.
    pub profile: bool,
    /// Admission priority, `0..=9` (default 5). Under overload, queued
    /// low-priority work is shed first to admit higher-priority arrivals.
    pub priority: u8,
}

/// Render a request `id` field for echoing: any scalar is kept verbatim,
/// structured ids are rejected by the caller, absence becomes `null`.
fn render_id(v: Option<&Json>) -> Result<String, String> {
    match v {
        None => Ok("null".to_string()),
        Some(Json::Arr(_)) | Some(Json::Obj(_)) => {
            Err("\"id\" must be a scalar (string, number, bool, or null)".into())
        }
        Some(scalar) => Ok(scalar.to_string()),
    }
}

/// Parse one request line. `Err` carries `(echoed-id, message)` for a
/// `bad_request`/`unknown_op` response — the id is recovered when the line
/// at least parsed as an object.
pub fn parse_request(line: &str) -> Result<Request, (String, ErrorCode, String)> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err((
            "null".into(),
            ErrorCode::BadRequest,
            format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
        ));
    }
    let doc = Json::parse(line).map_err(|e| {
        (
            "null".to_string(),
            ErrorCode::BadRequest,
            format!("invalid JSON: {e}"),
        )
    })?;
    if !matches!(doc, Json::Obj(_)) {
        return Err((
            "null".into(),
            ErrorCode::BadRequest,
            "request must be a JSON object".into(),
        ));
    }
    let id =
        render_id(doc.get("id")).map_err(|m| ("null".to_string(), ErrorCode::BadRequest, m))?;
    let fail = |code: ErrorCode, msg: String| (id.clone(), code, msg);

    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(ErrorCode::BadRequest, "missing string field \"op\"".into()))?;

    let str_field = |name: &str| -> Result<Option<String>, (String, ErrorCode, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(fail(
                ErrorCode::BadRequest,
                format!("field \"{name}\" must be a string"),
            )),
        }
    };
    let u64_field = |name: &str| -> Result<Option<u64>, (String, ErrorCode, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    format!("field \"{name}\" must be a non-negative integer"),
                )
            }),
        }
    };
    let bool_field = |name: &str| -> Result<bool, (String, ErrorCode, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(false),
            Some(v) => v.as_bool().ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    format!("field \"{name}\" must be a boolean"),
                )
            }),
        }
    };

    match op {
        "query" => {
            let pattern = str_field("pattern")?.ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    "query needs a string field \"pattern\"".into(),
                )
            })?;
            let graph = str_field("graph")?;
            let timeout_ms = u64_field("timeout_ms")?;
            let threads = u64_field("threads")?.map(|t| t as usize);
            let variant = str_field("variant")?;
            let profile = bool_field("profile")?;
            let priority = match u64_field("priority")? {
                None => 5,
                Some(p @ 0..=9) => p as u8,
                Some(p) => {
                    return Err(fail(
                        ErrorCode::BadRequest,
                        format!("field \"priority\" must be 0..=9, got {p}"),
                    ))
                }
            };
            Ok(Request::Query(QueryRequest {
                id,
                pattern,
                graph,
                timeout_ms,
                threads,
                variant,
                profile,
                priority,
            }))
        }
        "stats" => {
            let engine = bool_field("engine")?;
            Ok(Request::Stats { id, engine })
        }
        "catalog" => Ok(Request::Catalog { id }),
        "health" => Ok(Request::Health { id }),
        "ping" => Ok(Request::Ping { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(fail(ErrorCode::UnknownOp, format!("unknown op {other:?}"))),
    }
}

/// How a finished query is classified on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOutcome {
    /// Exhaustive count.
    Complete,
    /// Deadline (`timeout_ms` or the daemon default) expired.
    Timeout,
    /// Cancelled (drain grace expired under load).
    Cancelled,
    /// Per-query memory watermark hit.
    MemoryExceeded,
    /// One or more worker panics were contained; count covers surviving
    /// subtrees.
    PartialPanic,
}

impl WireOutcome {
    /// Wire spelling of the outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            WireOutcome::Complete => "complete",
            WireOutcome::Timeout => "timeout",
            WireOutcome::Cancelled => "cancelled",
            WireOutcome::MemoryExceeded => "memory_exceeded",
            WireOutcome::PartialPanic => "partial_panic",
        }
    }
}

/// Result fields of a finished query, rendered into an `ok`/`partial`
/// response line.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Echoed id.
    pub id: String,
    /// Matches counted (partial outcomes: matches so far).
    pub matches: u64,
    /// How the run ended.
    pub outcome: WireOutcome,
    /// Enumeration wall time, milliseconds.
    pub elapsed_ms: f64,
    /// Time spent queued behind admission control, milliseconds.
    pub queue_ms: f64,
    /// Whether the plan came from the cache.
    pub plan_cache_hit: bool,
    /// Graph the query ran against.
    pub graph: String,
    /// Contained worker panics (0 on healthy runs).
    pub failures: u64,
    /// Members in the multi-query batch this query rode in (≥ 2), or
    /// `None` when it executed alone. See DESIGN.md §16.
    pub batch_size: Option<u64>,
    /// `--profile`-style recorder document, when requested.
    pub profile: Option<String>,
}

/// Render a query result line.
pub fn render_result(r: &QueryResult) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", &r.id)
        .str(
            "status",
            if r.outcome == WireOutcome::Complete {
                "ok"
            } else {
                "partial"
            },
        )
        .u64("matches", r.matches)
        .str("outcome", r.outcome.as_str())
        .str("graph", &r.graph)
        .f64("elapsed_ms", r.elapsed_ms)
        .f64("queue_ms", r.queue_ms)
        .str("plan_cache", if r.plan_cache_hit { "hit" } else { "miss" });
    if r.failures > 0 {
        w.u64("failures", r.failures);
    }
    if let Some(k) = r.batch_size {
        w.u64("batch", k);
    }
    if let Some(p) = &r.profile {
        w.raw("profile", p);
    }
    w.finish()
}

/// Render a typed error line.
pub fn render_error(id: &str, code: ErrorCode, message: &str) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "error")
        .str("code", code.as_str())
        .str("error", message);
    w.finish()
}

/// Render an admission-control rejection. `queue_depth`/`max_concurrent`
/// tell the client what bound it hit; `retry_after_ms` is the daemon's
/// estimate of when a slot frees up (clients should back off at least
/// that long, with jitter). `shed` marks a request that was queued and
/// then displaced by higher-priority work.
pub fn render_overloaded(
    id: &str,
    in_flight: usize,
    queued: usize,
    limit: usize,
    retry_after_ms: u64,
    shed: bool,
) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "overloaded")
        .str(
            "error",
            if shed {
                "queued work shed for higher-priority arrivals; retry after backoff"
            } else {
                "admission queue full; retry later or lower request rate"
            },
        )
        .u64("in_flight", in_flight as u64)
        .u64("queued", queued as u64)
        .u64("max_concurrent", limit as u64)
        .u64("retry_after_ms", retry_after_ms);
    if shed {
        w.bool("shed", true);
    }
    w.finish()
}

/// Render a supervised-panic response: a typed `internal_error` carrying
/// the echoed id, the panic message, and the query context (graph,
/// pattern, transport stage) so the bug is attributable from the client
/// side alone.
pub fn render_internal(id: &str, panic_msg: &str, context: &[(&str, &str)]) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "error")
        .str("code", ErrorCode::Internal.as_str())
        .str(
            "error",
            &format!("query execution panicked (contained): {panic_msg}"),
        );
    for (k, v) in context {
        w.str(k, v);
    }
    w.finish()
}

/// Best-effort id recovery from a raw request line, for responses built
/// after the parsed request is gone (a panic unwound past it). Falls back
/// to `null` — never fails, never panics.
pub fn echo_id(line: &str) -> String {
    Json::parse(line.trim())
        .ok()
        .and_then(|doc| render_id(doc.get("id")).ok())
        .unwrap_or_else(|| "null".to_string())
}

/// Render a `ping` response.
pub fn render_pong(id: &str) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id).str("status", "ok").bool("pong", true);
    w.finish()
}

/// Render a `shutdown` acknowledgement.
pub fn render_shutdown_ack(id: &str) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id).str("status", "ok").bool("draining", true);
    w.finish()
}

/// Render one catalog entry as an object (used by the `catalog` response).
/// `healthy:false` marks an mmap-backed graph whose snapshot shrank or was
/// replaced on disk (see the SIGBUS guard in `catalog.rs`).
pub fn render_catalog_entry(e: &crate::catalog::CatalogEntry) -> String {
    let mut w = ObjWriter::new();
    w.str("name", &e.name)
        .str("source", &e.source)
        .str("format", e.format)
        .str("backend", e.backend)
        .bool(
            "healthy",
            e.healthy.load(std::sync::atomic::Ordering::Relaxed),
        )
        .u64("vertices", e.stats.num_vertices as u64)
        .u64("edges", e.stats.num_edges as u64)
        .u64("max_degree", e.stats.max_degree as u64)
        .u64("triangles", e.stats.triangles)
        .f64("load_ms", e.load_ms);
    w.finish()
}

/// Render the `catalog` response from rendered entries.
pub fn render_catalog(id: &str, entries: &[String]) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "ok")
        .raw("graphs", &format!("[{}]", entries.join(",")));
    w.finish()
}

/// Convenience for tests: pull `field` out of a rendered response line.
pub fn response_field(line: &str, field: &str) -> Option<Json> {
    Json::parse(line).ok()?.get(field).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_request() {
        let r = parse_request(
            r#"{"op":"query","pattern":"P2","graph":"yt","id":7,"timeout_ms":100,"threads":2,"profile":true}"#,
        )
        .unwrap();
        match r {
            Request::Query(q) => {
                assert_eq!(q.id, "7");
                assert_eq!(q.pattern, "P2");
                assert_eq!(q.graph.as_deref(), Some("yt"));
                assert_eq!(q.timeout_ms, Some(100));
                assert_eq!(q.threads, Some(2));
                assert!(q.profile);
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn id_is_echoed_verbatim() {
        for (req, want) in [
            (r#"{"op":"ping","id":"abc"}"#, "\"abc\""),
            (r#"{"op":"ping","id":3.5}"#, "3.5"),
            (r#"{"op":"ping","id":null}"#, "null"),
            (r#"{"op":"ping"}"#, "null"),
        ] {
            match parse_request(req).unwrap() {
                Request::Ping { id } => assert_eq!(id, want),
                other => panic!("{other:?}"),
            }
        }
        // Structured ids are rejected.
        let (_, code, _) = parse_request(r#"{"op":"ping","id":[1]}"#).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
    }

    #[test]
    fn typed_parse_failures() {
        let cases: &[(&str, ErrorCode)] = &[
            ("not json", ErrorCode::BadRequest),
            ("[1,2,3]", ErrorCode::BadRequest),
            (r#"{"pattern":"P1"}"#, ErrorCode::BadRequest), // missing op
            (r#"{"op":"nope"}"#, ErrorCode::UnknownOp),
            (r#"{"op":"query"}"#, ErrorCode::BadRequest), // missing pattern
            (r#"{"op":"query","pattern":7}"#, ErrorCode::BadRequest),
            (
                r#"{"op":"query","pattern":"P1","timeout_ms":-5}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op":"query","pattern":"P1","threads":"x"}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op":"query","pattern":"P1","profile":"yes"}"#,
                ErrorCode::BadRequest,
            ),
        ];
        for (line, want) in cases {
            let (_, code, _) = parse_request(line).unwrap_err();
            assert_eq!(code, *want, "line {line:?}");
        }
        // The unknown-op error still echoes the id.
        let (id, _, _) = parse_request(r#"{"op":"nope","id":9}"#).unwrap_err();
        assert_eq!(id, "9");
    }

    #[test]
    fn priority_parses_and_validates() {
        match parse_request(r#"{"op":"query","pattern":"P1"}"#).unwrap() {
            Request::Query(q) => assert_eq!(q.priority, 5),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"query","pattern":"P1","priority":9}"#).unwrap() {
            Request::Query(q) => assert_eq!(q.priority, 9),
            other => panic!("{other:?}"),
        }
        for bad in [
            r#"{"op":"query","pattern":"P1","priority":10}"#,
            r#"{"op":"query","pattern":"P1","priority":-1}"#,
            r#"{"op":"query","pattern":"P1","priority":"high"}"#,
        ] {
            let (_, code, _) = parse_request(bad).unwrap_err();
            assert_eq!(code, ErrorCode::BadRequest, "line {bad:?}");
        }
    }

    #[test]
    fn health_op_parses() {
        match parse_request(r#"{"op":"health","id":2}"#).unwrap() {
            Request::Health { id } => assert_eq!(id, "2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn echo_id_recovers_scalar_ids() {
        assert_eq!(echo_id(r#"{"op":"query","id":7}"#), "7");
        assert_eq!(echo_id(r#"{"op":"query","id":"q-1"}"#), "\"q-1\"");
        assert_eq!(echo_id(r#"{"op":"query"}"#), "null");
        assert_eq!(echo_id("not json at all"), "null");
        assert_eq!(echo_id(r#"{"op":"query","id":[1]}"#), "null");
    }

    #[test]
    fn oversized_line_rejected() {
        let big = format!(
            "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let (_, code, msg) = parse_request(&big).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(msg.contains("exceeds"));
    }

    #[test]
    fn response_renderers_emit_valid_json() {
        let res = render_result(&QueryResult {
            id: "1".into(),
            matches: 123,
            outcome: WireOutcome::Complete,
            elapsed_ms: 4.2,
            queue_ms: 0.0,
            plan_cache_hit: true,
            graph: "g".into(),
            failures: 0,
            batch_size: None,
            profile: None,
        });
        assert_eq!(response_field(&res, "status").unwrap().as_str(), Some("ok"));
        assert_eq!(response_field(&res, "matches").unwrap().as_u64(), Some(123));
        assert_eq!(
            response_field(&res, "plan_cache").unwrap().as_str(),
            Some("hit")
        );
        assert!(
            response_field(&res, "batch").is_none(),
            "unbatched results must not carry a batch field"
        );

        let partial = render_result(&QueryResult {
            id: "null".into(),
            matches: 5,
            outcome: WireOutcome::Timeout,
            elapsed_ms: 100.0,
            queue_ms: 1.5,
            plan_cache_hit: false,
            graph: "g".into(),
            failures: 2,
            batch_size: Some(3),
            profile: Some("{\"enabled\":false}".into()),
        });
        assert_eq!(
            response_field(&partial, "status").unwrap().as_str(),
            Some("partial")
        );
        assert_eq!(response_field(&partial, "batch").unwrap().as_u64(), Some(3));
        assert_eq!(
            response_field(&partial, "outcome").unwrap().as_str(),
            Some("timeout")
        );
        assert_eq!(
            response_field(&partial, "failures").unwrap().as_u64(),
            Some(2)
        );

        let err = render_error("null", ErrorCode::UnknownGraph, "no graph \"x\"");
        assert_eq!(
            response_field(&err, "code").unwrap().as_str(),
            Some("unknown_graph")
        );

        let ov = render_overloaded("3", 4, 8, 4, 125, false);
        assert_eq!(
            response_field(&ov, "status").unwrap().as_str(),
            Some("overloaded")
        );
        assert_eq!(
            response_field(&ov, "max_concurrent").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(
            response_field(&ov, "retry_after_ms").unwrap().as_u64(),
            Some(125)
        );
        assert!(response_field(&ov, "shed").is_none());
        let shed = render_overloaded("3", 4, 8, 4, 125, true);
        assert_eq!(response_field(&shed, "shed").unwrap().as_bool(), Some(true));

        let internal = render_internal("9", "boom", &[("graph", "g"), ("pattern", "P2")]);
        assert_eq!(
            response_field(&internal, "code").unwrap().as_str(),
            Some("internal_error")
        );
        assert_eq!(
            response_field(&internal, "status").unwrap().as_str(),
            Some("error")
        );
        assert_eq!(
            response_field(&internal, "graph").unwrap().as_str(),
            Some("g")
        );
        assert!(response_field(&internal, "error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("boom"));

        assert_eq!(
            response_field(&render_pong("null"), "pong")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(
            response_field(&render_shutdown_ack("null"), "draining")
                .unwrap()
                .as_bool(),
            Some(true)
        );
    }
}
