//! The serve wire protocol: newline-delimited JSON, one request per line,
//! one response line per request, in order.
//!
//! See `docs/serve.md` for the field reference. The protocol is
//! deliberately flat and versioned by field presence, not negotiation:
//! unknown request fields are ignored, unknown ops are a typed error, and
//! every response carries a `status` from a closed set —
//! `ok` | `partial` | `error` | `overloaded` — so clients can dispatch
//! without guessing.
//!
//! Requests:
//!
//! ```text
//! {"op":"query","pattern":"P2","graph":"yt","id":1,"priority":5,
//!  "timeout_ms":5000,"threads":4,"variant":"light","profile":false}
//! {"op":"update","graph":"yt","inserts":[[0,1],[2,3]],"deletes":[[4,5]],
//!  "compact":false}
//! {"op":"subscribe","pattern":"triangle","graph":"yt"}
//! {"op":"unsubscribe","sub":3}
//! {"op":"stats","engine":false}
//! {"op":"catalog"}
//! {"op":"health"}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! `id` is echoed verbatim on the response (any JSON scalar); requests
//! without one get `"id":null`. `overloaded` responses carry a computed
//! `retry_after_ms` backoff hint; `internal_error` responses (a supervised
//! panic) echo the id plus the graph/pattern context of the query that
//! tripped it.

use crate::json::{Json, ObjWriter};

/// Upper bound on one request line. Far beyond any legitimate request
/// (patterns are ≤ 8 vertices); a client streaming an unbounded "line"
/// must not buffer the daemon to death.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Upper bound on edges in one `update` batch (inserts + deletes). Keeps
/// the per-batch delta-maintenance work bounded; bulk loads should go
/// through `light convert` + daemon restart instead.
pub const MAX_UPDATE_EDGES: usize = 4096;

/// Machine-readable error codes (the `code` field of error responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON / not an object / missing or bad fields.
    BadRequest,
    /// `op` was not one of the known operations.
    UnknownOp,
    /// `graph` named nothing in the catalog.
    UnknownGraph,
    /// `pattern` did not parse as a catalog name or edge list.
    BadPattern,
    /// The query was structurally invalid for the target graph.
    BadQuery,
    /// The daemon is draining and accepts no new queries.
    Draining,
    /// The graph's backing snapshot shrank or was replaced on disk; the
    /// mapping can no longer be read safely (SIGBUS guard).
    GraphUnhealthy,
    /// Internal failure (a supervised panic; always a bug, never fatal).
    Internal,
}

impl ErrorCode {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::UnknownGraph => "unknown_graph",
            ErrorCode::BadPattern => "bad_pattern",
            ErrorCode::BadQuery => "bad_query",
            ErrorCode::Draining => "draining",
            ErrorCode::GraphUnhealthy => "graph_unhealthy",
            ErrorCode::Internal => "internal_error",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run a pattern query (the workhorse).
    Query(QueryRequest),
    /// Apply a batch of edge deletes-then-inserts to a catalog graph.
    Update(UpdateRequest),
    /// Register a maintained count for a (pattern, graph) pair.
    Subscribe(SubscribeRequest),
    /// Drop a maintained count by subscription id.
    Unsubscribe {
        /// Echoed request id (rendered form).
        id: String,
        /// Subscription id returned by `subscribe`.
        sub: u64,
    },
    /// Service + engine metrics snapshot.
    Stats {
        /// Echoed request id (rendered form).
        id: String,
        /// Include the full `light-metrics` recorder document.
        engine: bool,
    },
    /// List resident graphs with their precomputed stats.
    Catalog {
        /// Echoed request id (rendered form).
        id: String,
    },
    /// Readiness + liveness report (catalog health, executor heartbeat,
    /// queue depth, memory watermark).
    Health {
        /// Echoed request id (rendered form).
        id: String,
    },
    /// Liveness probe.
    Ping {
        /// Echoed request id (rendered form).
        id: String,
    },
    /// Begin a graceful drain (same path as SIGINT).
    Shutdown {
        /// Echoed request id (rendered form).
        id: String,
    },
}

/// Fields of a `query` request.
#[derive(Debug, Clone)]
pub struct QueryRequest {
    /// Echoed request id (rendered JSON scalar; `"null"` when absent).
    pub id: String,
    /// Pattern: `P1`..`P7`, `triangle`, or an `a-b,c-d` edge list.
    pub pattern: String,
    /// Catalog graph name; `None` defers to the daemon's sole graph.
    pub graph: Option<String>,
    /// Per-query deadline override, milliseconds.
    pub timeout_ms: Option<u64>,
    /// Worker threads for this query (capped by the daemon).
    pub threads: Option<usize>,
    /// Engine variant override (`se`|`lm`|`msc`|`light`).
    pub variant: Option<String>,
    /// Attach a per-query metrics recorder and return its JSON document.
    pub profile: bool,
    /// Admission priority, `0..=9` (default 5). Under overload, queued
    /// low-priority work is shed first to admit higher-priority arrivals.
    pub priority: u8,
}

/// Fields of an `update` request.
#[derive(Debug, Clone)]
pub struct UpdateRequest {
    /// Echoed request id (rendered JSON scalar; `"null"` when absent).
    pub id: String,
    /// Catalog graph name; `None` defers to the daemon's sole graph.
    pub graph: Option<String>,
    /// Edges to delete, applied before the inserts.
    pub deletes: Vec<(u32, u32)>,
    /// Edges to insert.
    pub inserts: Vec<(u32, u32)>,
    /// Force folding the overlay into a fresh base snapshot now.
    pub compact: bool,
}

/// Fields of a `subscribe` request.
#[derive(Debug, Clone)]
pub struct SubscribeRequest {
    /// Echoed request id (rendered JSON scalar; `"null"` when absent).
    pub id: String,
    /// Pattern: `P1`..`P7`, `triangle`, or an `a-b,c-d` edge list.
    pub pattern: String,
    /// Catalog graph name; `None` defers to the daemon's sole graph.
    pub graph: Option<String>,
}

/// Render a request `id` field for echoing: any scalar is kept verbatim,
/// structured ids are rejected by the caller, absence becomes `null`.
fn render_id(v: Option<&Json>) -> Result<String, String> {
    match v {
        None => Ok("null".to_string()),
        Some(Json::Arr(_)) | Some(Json::Obj(_)) => {
            Err("\"id\" must be a scalar (string, number, bool, or null)".into())
        }
        Some(scalar) => Ok(scalar.to_string()),
    }
}

/// Parse one request line. `Err` carries `(echoed-id, message)` for a
/// `bad_request`/`unknown_op` response — the id is recovered when the line
/// at least parsed as an object.
pub fn parse_request(line: &str) -> Result<Request, (String, ErrorCode, String)> {
    if line.len() > MAX_REQUEST_BYTES {
        return Err((
            "null".into(),
            ErrorCode::BadRequest,
            format!("request exceeds {MAX_REQUEST_BYTES} bytes"),
        ));
    }
    let doc = Json::parse(line).map_err(|e| {
        (
            "null".to_string(),
            ErrorCode::BadRequest,
            format!("invalid JSON: {e}"),
        )
    })?;
    if !matches!(doc, Json::Obj(_)) {
        return Err((
            "null".into(),
            ErrorCode::BadRequest,
            "request must be a JSON object".into(),
        ));
    }
    let id =
        render_id(doc.get("id")).map_err(|m| ("null".to_string(), ErrorCode::BadRequest, m))?;
    let fail = |code: ErrorCode, msg: String| (id.clone(), code, msg);

    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| fail(ErrorCode::BadRequest, "missing string field \"op\"".into()))?;

    let str_field = |name: &str| -> Result<Option<String>, (String, ErrorCode, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Str(s)) => Ok(Some(s.clone())),
            Some(_) => Err(fail(
                ErrorCode::BadRequest,
                format!("field \"{name}\" must be a string"),
            )),
        }
    };
    let u64_field = |name: &str| -> Result<Option<u64>, (String, ErrorCode, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    format!("field \"{name}\" must be a non-negative integer"),
                )
            }),
        }
    };
    let bool_field = |name: &str| -> Result<bool, (String, ErrorCode, String)> {
        match doc.get(name) {
            None | Some(Json::Null) => Ok(false),
            Some(v) => v.as_bool().ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    format!("field \"{name}\" must be a boolean"),
                )
            }),
        }
    };

    // `[[a,b],...]` edge arrays for the `update` op. Endpoints must be
    // non-negative integers that fit a vertex id; loops and duplicates
    // are tolerated here and normalized by the overlay.
    let edges_field = |name: &str| -> Result<Vec<(u32, u32)>, (String, ErrorCode, String)> {
        let bad = |msg: String| fail(ErrorCode::BadRequest, msg);
        match doc.get(name) {
            None | Some(Json::Null) => Ok(Vec::new()),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|item| match item {
                    Json::Arr(pair) if pair.len() == 2 => {
                        let v = |j: &Json| {
                            j.as_u64()
                                .filter(|&x| x <= u32::MAX as u64)
                                .map(|x| x as u32)
                        };
                        match (v(&pair[0]), v(&pair[1])) {
                            (Some(a), Some(b)) => Ok((a, b)),
                            _ => Err(bad(format!(
                                "field \"{name}\": edge endpoints must be u32 integers"
                            ))),
                        }
                    }
                    _ => Err(bad(format!(
                        "field \"{name}\" must be an array of [a,b] pairs"
                    ))),
                })
                .collect(),
            Some(_) => Err(bad(format!(
                "field \"{name}\" must be an array of [a,b] pairs"
            ))),
        }
    };

    match op {
        "query" => {
            let pattern = str_field("pattern")?.ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    "query needs a string field \"pattern\"".into(),
                )
            })?;
            let graph = str_field("graph")?;
            let timeout_ms = u64_field("timeout_ms")?;
            let threads = u64_field("threads")?.map(|t| t as usize);
            let variant = str_field("variant")?;
            let profile = bool_field("profile")?;
            let priority = match u64_field("priority")? {
                None => 5,
                Some(p @ 0..=9) => p as u8,
                Some(p) => {
                    return Err(fail(
                        ErrorCode::BadRequest,
                        format!("field \"priority\" must be 0..=9, got {p}"),
                    ))
                }
            };
            Ok(Request::Query(QueryRequest {
                id,
                pattern,
                graph,
                timeout_ms,
                threads,
                variant,
                profile,
                priority,
            }))
        }
        "update" => {
            let graph = str_field("graph")?;
            let deletes = edges_field("deletes")?;
            let inserts = edges_field("inserts")?;
            let compact = bool_field("compact")?;
            if deletes.is_empty() && inserts.is_empty() && !compact {
                return Err(fail(
                    ErrorCode::BadRequest,
                    "update needs \"inserts\", \"deletes\", or \"compact\":true".into(),
                ));
            }
            if deletes.len() + inserts.len() > MAX_UPDATE_EDGES {
                return Err(fail(
                    ErrorCode::BadRequest,
                    format!("update batch exceeds {MAX_UPDATE_EDGES} edges"),
                ));
            }
            Ok(Request::Update(UpdateRequest {
                id,
                graph,
                deletes,
                inserts,
                compact,
            }))
        }
        "subscribe" => {
            let pattern = str_field("pattern")?.ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    "subscribe needs a string field \"pattern\"".into(),
                )
            })?;
            let graph = str_field("graph")?;
            Ok(Request::Subscribe(SubscribeRequest { id, pattern, graph }))
        }
        "unsubscribe" => {
            let sub = u64_field("sub")?.ok_or_else(|| {
                fail(
                    ErrorCode::BadRequest,
                    "unsubscribe needs an integer field \"sub\"".into(),
                )
            })?;
            Ok(Request::Unsubscribe { id, sub })
        }
        "stats" => {
            let engine = bool_field("engine")?;
            Ok(Request::Stats { id, engine })
        }
        "catalog" => Ok(Request::Catalog { id }),
        "health" => Ok(Request::Health { id }),
        "ping" => Ok(Request::Ping { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(fail(ErrorCode::UnknownOp, format!("unknown op {other:?}"))),
    }
}

/// How a finished query is classified on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOutcome {
    /// Exhaustive count.
    Complete,
    /// Deadline (`timeout_ms` or the daemon default) expired.
    Timeout,
    /// Cancelled (drain grace expired under load).
    Cancelled,
    /// Per-query memory watermark hit.
    MemoryExceeded,
    /// One or more worker panics were contained; count covers surviving
    /// subtrees.
    PartialPanic,
}

impl WireOutcome {
    /// Wire spelling of the outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            WireOutcome::Complete => "complete",
            WireOutcome::Timeout => "timeout",
            WireOutcome::Cancelled => "cancelled",
            WireOutcome::MemoryExceeded => "memory_exceeded",
            WireOutcome::PartialPanic => "partial_panic",
        }
    }
}

/// Result fields of a finished query, rendered into an `ok`/`partial`
/// response line.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Echoed id.
    pub id: String,
    /// Matches counted (partial outcomes: matches so far).
    pub matches: u64,
    /// How the run ended.
    pub outcome: WireOutcome,
    /// Enumeration wall time, milliseconds.
    pub elapsed_ms: f64,
    /// Time spent queued behind admission control, milliseconds.
    pub queue_ms: f64,
    /// Whether the plan came from the cache.
    pub plan_cache_hit: bool,
    /// Graph the query ran against.
    pub graph: String,
    /// Contained worker panics (0 on healthy runs).
    pub failures: u64,
    /// Members in the multi-query batch this query rode in (≥ 2), or
    /// `None` when it executed alone. See DESIGN.md §16.
    pub batch_size: Option<u64>,
    /// `--profile`-style recorder document, when requested.
    pub profile: Option<String>,
}

/// Render a query result line.
pub fn render_result(r: &QueryResult) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", &r.id)
        .str(
            "status",
            if r.outcome == WireOutcome::Complete {
                "ok"
            } else {
                "partial"
            },
        )
        .u64("matches", r.matches)
        .str("outcome", r.outcome.as_str())
        .str("graph", &r.graph)
        .f64("elapsed_ms", r.elapsed_ms)
        .f64("queue_ms", r.queue_ms)
        .str("plan_cache", if r.plan_cache_hit { "hit" } else { "miss" });
    if r.failures > 0 {
        w.u64("failures", r.failures);
    }
    if let Some(k) = r.batch_size {
        w.u64("batch", k);
    }
    if let Some(p) = &r.profile {
        w.raw("profile", p);
    }
    w.finish()
}

/// Render a typed error line.
pub fn render_error(id: &str, code: ErrorCode, message: &str) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "error")
        .str("code", code.as_str())
        .str("error", message);
    w.finish()
}

/// Render an admission-control rejection. `queue_depth`/`max_concurrent`
/// tell the client what bound it hit; `retry_after_ms` is the daemon's
/// estimate of when a slot frees up (clients should back off at least
/// that long, with jitter). `shed` marks a request that was queued and
/// then displaced by higher-priority work.
pub fn render_overloaded(
    id: &str,
    in_flight: usize,
    queued: usize,
    limit: usize,
    retry_after_ms: u64,
    shed: bool,
) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "overloaded")
        .str(
            "error",
            if shed {
                "queued work shed for higher-priority arrivals; retry after backoff"
            } else {
                "admission queue full; retry later or lower request rate"
            },
        )
        .u64("in_flight", in_flight as u64)
        .u64("queued", queued as u64)
        .u64("max_concurrent", limit as u64)
        .u64("retry_after_ms", retry_after_ms);
    if shed {
        w.bool("shed", true);
    }
    w.finish()
}

/// Render a supervised-panic response: a typed `internal_error` carrying
/// the echoed id, the panic message, and the query context (graph,
/// pattern, transport stage) so the bug is attributable from the client
/// side alone.
pub fn render_internal(id: &str, panic_msg: &str, context: &[(&str, &str)]) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "error")
        .str("code", ErrorCode::Internal.as_str())
        .str(
            "error",
            &format!("query execution panicked (contained): {panic_msg}"),
        );
    for (k, v) in context {
        w.str(k, v);
    }
    w.finish()
}

/// Best-effort id recovery from a raw request line, for responses built
/// after the parsed request is gone (a panic unwound past it). Falls back
/// to `null` — never fails, never panics.
pub fn echo_id(line: &str) -> String {
    Json::parse(line.trim())
        .ok()
        .and_then(|doc| render_id(doc.get("id")).ok())
        .unwrap_or_else(|| "null".to_string())
}

/// Render a `ping` response.
pub fn render_pong(id: &str) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id).str("status", "ok").bool("pong", true);
    w.finish()
}

/// Render a `shutdown` acknowledgement.
pub fn render_shutdown_ack(id: &str) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id).str("status", "ok").bool("draining", true);
    w.finish()
}

/// One maintained count's state after an update, echoed in the `update`
/// response so subscribers see their new counts without a round trip.
#[derive(Debug, Clone)]
pub struct SubscriptionDelta {
    /// Subscription id.
    pub sub: u64,
    /// Pattern spec the subscription was registered with.
    pub pattern: String,
    /// Maintained reduced count after the batch.
    pub count: u64,
    /// Raw embeddings destroyed by the batch.
    pub destroyed: u64,
    /// Raw embeddings created by the batch.
    pub created: u64,
}

/// Result fields of a committed `update`.
#[derive(Debug, Clone)]
pub struct UpdateResult {
    /// Echoed id.
    pub id: String,
    /// Graph the batch applied to.
    pub graph: String,
    /// Graph generation after the commit (monotone per entry).
    pub generation: u64,
    /// Edges actually inserted (after normalization and presence checks).
    pub inserted: u64,
    /// Edges actually deleted.
    pub deleted: u64,
    /// Insert requests that were loops, duplicates, or already present.
    pub dup_inserts: u64,
    /// Delete requests for edges that were not present.
    pub missing_deletes: u64,
    /// Overlay edges still pending after the batch.
    pub pending: u64,
    /// Whether the overlay was folded into a fresh base (and the backing
    /// snapshot rewritten, for snapshot-backed entries).
    pub compacted: bool,
    /// Wall time to apply + maintain, milliseconds.
    pub elapsed_ms: f64,
    /// Post-batch state of every maintained count on this graph.
    pub subscriptions: Vec<SubscriptionDelta>,
}

/// Render an `update` response line.
pub fn render_update(r: &UpdateResult) -> String {
    let subs: Vec<String> = r
        .subscriptions
        .iter()
        .map(|s| {
            let mut w = ObjWriter::new();
            w.u64("sub", s.sub)
                .str("pattern", &s.pattern)
                .u64("count", s.count)
                .u64("destroyed", s.destroyed)
                .u64("created", s.created);
            w.finish()
        })
        .collect();
    let mut w = ObjWriter::new();
    w.raw("id", &r.id)
        .str("status", "ok")
        .str("graph", &r.graph)
        .u64("generation", r.generation)
        .u64("inserted", r.inserted)
        .u64("deleted", r.deleted)
        .u64("dup_inserts", r.dup_inserts)
        .u64("missing_deletes", r.missing_deletes)
        .u64("pending", r.pending)
        .bool("compacted", r.compacted)
        .f64("elapsed_ms", r.elapsed_ms)
        .raw("subscriptions", &format!("[{}]", subs.join(",")));
    w.finish()
}

/// Render a `subscribe` response line: the new subscription id plus the
/// full count the registration just computed.
pub fn render_subscribed(
    id: &str,
    sub: u64,
    graph: &str,
    pattern: &str,
    generation: u64,
    count: u64,
    elapsed_ms: f64,
) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "ok")
        .u64("sub", sub)
        .str("graph", graph)
        .str("pattern", pattern)
        .u64("generation", generation)
        .u64("count", count)
        .f64("elapsed_ms", elapsed_ms);
    w.finish()
}

/// Render an `unsubscribe` response line.
pub fn render_unsubscribed(id: &str, sub: u64, removed: bool) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "ok")
        .u64("sub", sub)
        .bool("removed", removed);
    w.finish()
}

/// Render one catalog entry as an object (used by the `catalog` response).
/// `healthy:false` marks an mmap-backed graph whose snapshot shrank or was
/// replaced on disk (see the SIGBUS guard in `catalog.rs`). `generation`
/// counts committed updates; `pending` is the overlay edges not yet folded
/// into the base.
pub fn render_catalog_entry(e: &crate::catalog::CatalogEntry) -> String {
    let stats = e.stats();
    let mut w = ObjWriter::new();
    w.str("name", &e.name)
        .str("source", &e.source)
        .str("format", e.format)
        .str("backend", e.backend())
        .bool(
            "healthy",
            e.healthy.load(std::sync::atomic::Ordering::Relaxed),
        )
        .u64("vertices", stats.num_vertices as u64)
        .u64("edges", stats.num_edges as u64)
        .u64("max_degree", stats.max_degree as u64)
        .u64("triangles", stats.triangles)
        .u64("generation", e.generation())
        .u64("pending", e.pending_edges() as u64)
        .f64("load_ms", e.load_ms);
    w.finish()
}

/// Render the `catalog` response from rendered entries.
pub fn render_catalog(id: &str, entries: &[String]) -> String {
    let mut w = ObjWriter::new();
    w.raw("id", id)
        .str("status", "ok")
        .raw("graphs", &format!("[{}]", entries.join(",")));
    w.finish()
}

/// Convenience for tests: pull `field` out of a rendered response line.
pub fn response_field(line: &str, field: &str) -> Option<Json> {
    Json::parse(line).ok()?.get(field).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_request() {
        let r = parse_request(
            r#"{"op":"query","pattern":"P2","graph":"yt","id":7,"timeout_ms":100,"threads":2,"profile":true}"#,
        )
        .unwrap();
        match r {
            Request::Query(q) => {
                assert_eq!(q.id, "7");
                assert_eq!(q.pattern, "P2");
                assert_eq!(q.graph.as_deref(), Some("yt"));
                assert_eq!(q.timeout_ms, Some(100));
                assert_eq!(q.threads, Some(2));
                assert!(q.profile);
            }
            other => panic!("expected query, got {other:?}"),
        }
    }

    #[test]
    fn id_is_echoed_verbatim() {
        for (req, want) in [
            (r#"{"op":"ping","id":"abc"}"#, "\"abc\""),
            (r#"{"op":"ping","id":3.5}"#, "3.5"),
            (r#"{"op":"ping","id":null}"#, "null"),
            (r#"{"op":"ping"}"#, "null"),
        ] {
            match parse_request(req).unwrap() {
                Request::Ping { id } => assert_eq!(id, want),
                other => panic!("{other:?}"),
            }
        }
        // Structured ids are rejected.
        let (_, code, _) = parse_request(r#"{"op":"ping","id":[1]}"#).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
    }

    #[test]
    fn typed_parse_failures() {
        let cases: &[(&str, ErrorCode)] = &[
            ("not json", ErrorCode::BadRequest),
            ("[1,2,3]", ErrorCode::BadRequest),
            (r#"{"pattern":"P1"}"#, ErrorCode::BadRequest), // missing op
            (r#"{"op":"nope"}"#, ErrorCode::UnknownOp),
            (r#"{"op":"query"}"#, ErrorCode::BadRequest), // missing pattern
            (r#"{"op":"query","pattern":7}"#, ErrorCode::BadRequest),
            (
                r#"{"op":"query","pattern":"P1","timeout_ms":-5}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op":"query","pattern":"P1","threads":"x"}"#,
                ErrorCode::BadRequest,
            ),
            (
                r#"{"op":"query","pattern":"P1","profile":"yes"}"#,
                ErrorCode::BadRequest,
            ),
        ];
        for (line, want) in cases {
            let (_, code, _) = parse_request(line).unwrap_err();
            assert_eq!(code, *want, "line {line:?}");
        }
        // The unknown-op error still echoes the id.
        let (id, _, _) = parse_request(r#"{"op":"nope","id":9}"#).unwrap_err();
        assert_eq!(id, "9");
    }

    #[test]
    fn priority_parses_and_validates() {
        match parse_request(r#"{"op":"query","pattern":"P1"}"#).unwrap() {
            Request::Query(q) => assert_eq!(q.priority, 5),
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"query","pattern":"P1","priority":9}"#).unwrap() {
            Request::Query(q) => assert_eq!(q.priority, 9),
            other => panic!("{other:?}"),
        }
        for bad in [
            r#"{"op":"query","pattern":"P1","priority":10}"#,
            r#"{"op":"query","pattern":"P1","priority":-1}"#,
            r#"{"op":"query","pattern":"P1","priority":"high"}"#,
        ] {
            let (_, code, _) = parse_request(bad).unwrap_err();
            assert_eq!(code, ErrorCode::BadRequest, "line {bad:?}");
        }
    }

    #[test]
    fn health_op_parses() {
        match parse_request(r#"{"op":"health","id":2}"#).unwrap() {
            Request::Health { id } => assert_eq!(id, "2"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn echo_id_recovers_scalar_ids() {
        assert_eq!(echo_id(r#"{"op":"query","id":7}"#), "7");
        assert_eq!(echo_id(r#"{"op":"query","id":"q-1"}"#), "\"q-1\"");
        assert_eq!(echo_id(r#"{"op":"query"}"#), "null");
        assert_eq!(echo_id("not json at all"), "null");
        assert_eq!(echo_id(r#"{"op":"query","id":[1]}"#), "null");
    }

    #[test]
    fn oversized_line_rejected() {
        let big = format!(
            "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
            "x".repeat(MAX_REQUEST_BYTES)
        );
        let (_, code, msg) = parse_request(&big).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(msg.contains("exceeds"));
    }

    #[test]
    fn response_renderers_emit_valid_json() {
        let res = render_result(&QueryResult {
            id: "1".into(),
            matches: 123,
            outcome: WireOutcome::Complete,
            elapsed_ms: 4.2,
            queue_ms: 0.0,
            plan_cache_hit: true,
            graph: "g".into(),
            failures: 0,
            batch_size: None,
            profile: None,
        });
        assert_eq!(response_field(&res, "status").unwrap().as_str(), Some("ok"));
        assert_eq!(response_field(&res, "matches").unwrap().as_u64(), Some(123));
        assert_eq!(
            response_field(&res, "plan_cache").unwrap().as_str(),
            Some("hit")
        );
        assert!(
            response_field(&res, "batch").is_none(),
            "unbatched results must not carry a batch field"
        );

        let partial = render_result(&QueryResult {
            id: "null".into(),
            matches: 5,
            outcome: WireOutcome::Timeout,
            elapsed_ms: 100.0,
            queue_ms: 1.5,
            plan_cache_hit: false,
            graph: "g".into(),
            failures: 2,
            batch_size: Some(3),
            profile: Some("{\"enabled\":false}".into()),
        });
        assert_eq!(
            response_field(&partial, "status").unwrap().as_str(),
            Some("partial")
        );
        assert_eq!(response_field(&partial, "batch").unwrap().as_u64(), Some(3));
        assert_eq!(
            response_field(&partial, "outcome").unwrap().as_str(),
            Some("timeout")
        );
        assert_eq!(
            response_field(&partial, "failures").unwrap().as_u64(),
            Some(2)
        );

        let err = render_error("null", ErrorCode::UnknownGraph, "no graph \"x\"");
        assert_eq!(
            response_field(&err, "code").unwrap().as_str(),
            Some("unknown_graph")
        );

        let ov = render_overloaded("3", 4, 8, 4, 125, false);
        assert_eq!(
            response_field(&ov, "status").unwrap().as_str(),
            Some("overloaded")
        );
        assert_eq!(
            response_field(&ov, "max_concurrent").unwrap().as_u64(),
            Some(4)
        );
        assert_eq!(
            response_field(&ov, "retry_after_ms").unwrap().as_u64(),
            Some(125)
        );
        assert!(response_field(&ov, "shed").is_none());
        let shed = render_overloaded("3", 4, 8, 4, 125, true);
        assert_eq!(response_field(&shed, "shed").unwrap().as_bool(), Some(true));

        let internal = render_internal("9", "boom", &[("graph", "g"), ("pattern", "P2")]);
        assert_eq!(
            response_field(&internal, "code").unwrap().as_str(),
            Some("internal_error")
        );
        assert_eq!(
            response_field(&internal, "status").unwrap().as_str(),
            Some("error")
        );
        assert_eq!(
            response_field(&internal, "graph").unwrap().as_str(),
            Some("g")
        );
        assert!(response_field(&internal, "error")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("boom"));

        assert_eq!(
            response_field(&render_pong("null"), "pong")
                .unwrap()
                .as_bool(),
            Some(true)
        );
        assert_eq!(
            response_field(&render_shutdown_ack("null"), "draining")
                .unwrap()
                .as_bool(),
            Some(true)
        );
    }

    #[test]
    fn parses_update_request() {
        let r = parse_request(
            r#"{"op":"update","graph":"g","inserts":[[0,1],[2,3]],"deletes":[[4,5]],"id":"u1"}"#,
        )
        .unwrap();
        match r {
            Request::Update(u) => {
                assert_eq!(u.id, "\"u1\"");
                assert_eq!(u.graph.as_deref(), Some("g"));
                assert_eq!(u.inserts, vec![(0, 1), (2, 3)]);
                assert_eq!(u.deletes, vec![(4, 5)]);
                assert!(!u.compact);
            }
            other => panic!("expected update, got {other:?}"),
        }
        // A pure compaction request carries no edges at all.
        match parse_request(r#"{"op":"update","compact":true}"#).unwrap() {
            Request::Update(u) => {
                assert!(u.compact);
                assert!(u.inserts.is_empty() && u.deletes.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_parse_failures_are_typed() {
        let cases: &[&str] = &[
            // No edges and no compact: nothing to do.
            r#"{"op":"update"}"#,
            r#"{"op":"update","compact":false}"#,
            // Malformed edge arrays.
            r#"{"op":"update","inserts":[[0]]}"#,
            r#"{"op":"update","inserts":[[0,1,2]]}"#,
            r#"{"op":"update","inserts":[0,1]}"#,
            r#"{"op":"update","inserts":"0-1"}"#,
            r#"{"op":"update","inserts":[["a","b"]]}"#,
            r#"{"op":"update","deletes":[[-1,2]]}"#,
            r#"{"op":"update","inserts":[[4294967296,0]]}"#,
        ];
        for line in cases {
            let (_, code, _) = parse_request(line).unwrap_err();
            assert_eq!(code, ErrorCode::BadRequest, "line {line:?}");
        }

        // A batch over the cap is refused up front, before any graph work.
        let edges: Vec<String> = (0..=MAX_UPDATE_EDGES as u64)
            .map(|i| format!("[{i},{}]", i + 1))
            .collect();
        let big = format!("{{\"op\":\"update\",\"inserts\":[{}]}}", edges.join(","));
        let (_, code, msg) = parse_request(&big).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        assert!(msg.contains("exceeds") || msg.contains("bytes"), "{msg}");
    }

    #[test]
    fn parses_subscribe_and_unsubscribe() {
        match parse_request(r#"{"op":"subscribe","pattern":"triangle","graph":"g","id":1}"#)
            .unwrap()
        {
            Request::Subscribe(s) => {
                assert_eq!(s.pattern, "triangle");
                assert_eq!(s.graph.as_deref(), Some("g"));
                assert_eq!(s.id, "1");
            }
            other => panic!("{other:?}"),
        }
        match parse_request(r#"{"op":"unsubscribe","sub":7}"#).unwrap() {
            Request::Unsubscribe { sub, .. } => assert_eq!(sub, 7),
            other => panic!("{other:?}"),
        }
        // Missing required fields stay typed.
        let (_, code, _) = parse_request(r#"{"op":"subscribe"}"#).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        let (_, code, _) = parse_request(r#"{"op":"unsubscribe"}"#).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
        let (_, code, _) = parse_request(r#"{"op":"unsubscribe","sub":"x"}"#).unwrap_err();
        assert_eq!(code, ErrorCode::BadRequest);
    }

    #[test]
    fn update_and_subscription_renderers_emit_valid_json() {
        let res = render_update(&UpdateResult {
            id: "\"u\"".into(),
            graph: "g".into(),
            generation: 3,
            inserted: 2,
            deleted: 1,
            dup_inserts: 1,
            missing_deletes: 0,
            pending: 5,
            compacted: false,
            elapsed_ms: 0.7,
            subscriptions: vec![SubscriptionDelta {
                sub: 1,
                pattern: "triangle".into(),
                count: 42,
                destroyed: 3,
                created: 9,
            }],
        });
        assert_eq!(response_field(&res, "status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            response_field(&res, "generation").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(response_field(&res, "inserted").unwrap().as_u64(), Some(2));
        assert_eq!(response_field(&res, "pending").unwrap().as_u64(), Some(5));
        assert_eq!(
            response_field(&res, "compacted").unwrap().as_bool(),
            Some(false)
        );
        let subs = response_field(&res, "subscriptions").expect("subscriptions array");
        match &subs {
            Json::Arr(items) => {
                assert_eq!(items.len(), 1);
                assert_eq!(items[0].get("sub").and_then(Json::as_u64), Some(1));
                assert_eq!(items[0].get("count").and_then(Json::as_u64), Some(42));
                assert_eq!(
                    items[0].get("pattern").and_then(Json::as_str),
                    Some("triangle")
                );
            }
            other => panic!("subscriptions must be an array, got {other:?}"),
        }

        let sub = render_subscribed("\"s\"", 4, "g", "p2", 7, 1234, 0.3);
        assert_eq!(response_field(&sub, "status").unwrap().as_str(), Some("ok"));
        assert_eq!(response_field(&sub, "sub").unwrap().as_u64(), Some(4));
        assert_eq!(response_field(&sub, "count").unwrap().as_u64(), Some(1234));
        assert_eq!(
            response_field(&sub, "generation").unwrap().as_u64(),
            Some(7)
        );

        let un = render_unsubscribed("null", 4, true);
        assert_eq!(
            response_field(&un, "removed").unwrap().as_bool(),
            Some(true)
        );
        let un = render_unsubscribed("null", 9, false);
        assert_eq!(
            response_field(&un, "removed").unwrap().as_bool(),
            Some(false)
        );
    }
}
