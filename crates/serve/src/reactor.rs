//! Event-driven serve transport: an epoll readiness loop (DESIGN.md §13).
//!
//! The thread-per-connection transport in [`crate::server`] costs one OS
//! thread plus a 100 ms poll-timeout read loop *per connection* — fine
//! for a handful of shell pipelines, hopeless for thousands of mostly
//! idle clients, and the handler threads fight the engine workers for
//! cores. This module multiplexes every connection onto **one I/O
//! thread** with `epoll(7)`:
//!
//! * the reactor thread owns the listener, all connection sockets (all
//!   non-blocking), and an `eventfd(2)` wakeup;
//! * readable connections are drained into a per-connection buffer and
//!   split into NDJSON request lines;
//! * complete lines are handed to a small **executor pool** that runs
//!   [`QueryService::handle_line`] — the same admission/timeout path as
//!   every other transport, so engine workers stay distinct from the I/O
//!   thread and admission control still bounds concurrency;
//! * finished responses come back through a completion queue; the
//!   executor pokes the eventfd so the reactor wakes instantly, writes
//!   the response, and dispatches the connection's next pending line.
//!
//! Per-connection responses stay in request order: at most one line per
//! connection is at the executors at a time (`in_flight`), the rest wait
//! in the connection's `pending` queue. An idle connection costs one fd
//! and a few hundred bytes — no thread, no timer, no polling.
//!
//! Drain integrates with the same eventfd: the CLI's SIGINT handler (or
//! anyone holding [`ReactorServer::wake_fd`]) writes 8 bytes, the
//! reactor wakes, sees `service.is_draining()`, closes the listener and
//! every idle connection, lets in-flight requests finish, and exits when
//! the last connection drains — no sleep-polling anywhere on the path.
//!
//! Everything here is a thin vendored shim over raw `epoll`/`eventfd`
//! symbols (the repo's no-new-dependencies idiom, like the CLI's SIGINT
//! handler); see [`sys`]. Linux-only, like epoll — the CLI falls back to
//! the thread transport elsewhere.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::protocol::{self, MAX_REQUEST_BYTES};
use crate::server::{accept_error_is_transient, bind_uds};
use crate::service::{lock_recover, QueryService};

/// Raw epoll / eventfd bindings. Direct `extern "C"` libc symbols — the
/// same dependency-free idiom as the SIGINT handler and
/// `sched_setaffinity` shim.
mod sys {
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EFD_CLOEXEC: i32 = 0o2000000;
    pub const EFD_NONBLOCK: i32 = 0o4000;

    /// `struct epoll_event`. Packed on x86_64 (the kernel ABI packs it
    /// there so 32-bit and 64-bit layouts match); natural alignment
    /// elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// Wakeup eventfd, shared between the reactor (reads) and wakers
/// (executors, the SIGINT handler — writes). The single `write` is
/// async-signal-safe, so a signal handler may call [`WakeFd::wake`]
/// directly.
pub struct WakeFd {
    fd: RawFd,
}

impl WakeFd {
    fn new() -> io::Result<WakeFd> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(WakeFd { fd })
    }

    /// Wake the reactor. Async-signal-safe; failures are ignored (a full
    /// eventfd counter already means a wake is pending).
    pub fn wake(&self) {
        let one: u64 = 1;
        unsafe {
            sys::write(self.fd, (&one as *const u64).cast(), 8);
        }
    }

    /// Reset the counter so the level-triggered readiness clears.
    fn drain(&self) {
        let mut buf = [0u8; 8];
        unsafe {
            sys::read(self.fd, buf.as_mut_ptr(), 8);
        }
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// RAII epoll instance with typed interest management.
struct Epoll {
    fd: RawFd,
}

impl Epoll {
    fn new() -> io::Result<Epoll> {
        let fd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.fd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn add(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, events, token)
    }

    fn modify(&self, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, events, token)
    }

    fn del(&self, fd: RawFd) {
        let _ = self.ctl(sys::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Wait for readiness; returns the ready events. `timeout` bounds the
    /// wait (safety-net heartbeat; every real transition arrives via fd).
    fn wait(&self, events: &mut Vec<sys::EpollEvent>, timeout: Duration) -> io::Result<()> {
        events.clear();
        let cap = events.capacity().max(64) as i32;
        let n = unsafe {
            sys::epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                cap,
                timeout.as_millis().min(i32::MAX as u128) as i32,
            )
        };
        if n < 0 {
            let e = io::Error::last_os_error();
            if e.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(e);
        }
        // SAFETY: the kernel initialized the first n entries.
        unsafe { events.set_len(n as usize) };
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// Reserved epoll tokens; connections get ids from 2 upward.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKE: u64 = 1;
const FIRST_CONN: u64 = 2;

/// Per-connection cap on parsed-but-undispatched request lines. A client
/// that pipelines past this stops being read (its socket buffer fills —
/// natural backpressure) until responses drain the queue.
const PENDING_CAP: usize = 64;

/// Stop reading a connection whose unwritten response bytes exceed this
/// (the peer is not consuming responses; don't buffer unboundedly).
const OUTBUF_HIGH_WATER: usize = 256 * 1024;

/// Safety-net heartbeat for `epoll_wait`: the reactor re-checks the drain
/// flag at least this often even if every wake signal is lost.
const HEARTBEAT: Duration = Duration::from_millis(1000);

/// One multiplexed connection.
struct Conn {
    stream: UnixStream,
    /// Partial-line accumulation (bytes read, no `\n` yet).
    inbuf: Vec<u8>,
    /// Complete request lines awaiting dispatch (already trimmed).
    pending: VecDeque<String>,
    /// Response bytes awaiting a writable socket.
    outbuf: Vec<u8>,
    /// One line is at the executors; responses stay in request order.
    in_flight: bool,
    /// Close once pending + in-flight + outbuf all drain (EOF received,
    /// oversized line, or write error).
    closing: bool,
    /// Interest currently registered with epoll.
    interest: u32,
    /// When the connection started holding a *partial* request line
    /// (bytes in `inbuf`, no terminator yet). The slowloris guard closes
    /// connections that sit in this state past the idle timeout; `None`
    /// whenever `inbuf` is empty, so fully idle connections stay free.
    partial_since: Option<Instant>,
}

impl Conn {
    fn new(stream: UnixStream) -> Conn {
        Conn {
            stream,
            inbuf: Vec::new(),
            pending: VecDeque::new(),
            outbuf: Vec::new(),
            in_flight: false,
            closing: false,
            interest: 0,
            partial_since: None,
        }
    }

    /// Events this connection currently cares about.
    fn wanted(&self) -> u32 {
        let mut ev = 0;
        let throttled = self.pending.len() >= PENDING_CAP || self.outbuf.len() >= OUTBUF_HIGH_WATER;
        if !self.closing && !throttled {
            ev |= sys::EPOLLIN;
        }
        if !self.outbuf.is_empty() {
            ev |= sys::EPOLLOUT;
        }
        ev
    }

    /// Whether a drain may close this connection now. A half-received
    /// request line (`inbuf`) is deliberately *not* protected: no complete
    /// request was submitted, so abandoning it keeps the one-response-per-
    /// request conservation law — and protecting it would let a slowloris
    /// client holding a partial line block shutdown forever. In-flight
    /// work, queued lines, and unflushed responses all keep the
    /// connection alive until they complete and flush.
    fn drain_sheddable(&self) -> bool {
        self.pending.is_empty() && !self.in_flight && self.outbuf.is_empty()
    }

    /// Whether a closing connection has fully drained.
    fn drained(&self) -> bool {
        self.closing && self.pending.is_empty() && !self.in_flight && self.outbuf.is_empty()
    }
}

/// A request line travelling to the executor pool.
struct Job {
    conn: u64,
    line: String,
}

/// A running epoll-reactor transport.
pub struct ReactorServer {
    reactor: JoinHandle<io::Result<()>>,
    executors: Vec<JoinHandle<()>>,
    wake: Arc<WakeFd>,
    path: std::path::PathBuf,
}

impl ReactorServer {
    /// Bind `path` (same stale-socket/live-daemon handling as the thread
    /// transport) and start the reactor plus its executor pool.
    pub fn bind(
        service: Arc<QueryService>,
        path: impl Into<std::path::PathBuf>,
    ) -> io::Result<ReactorServer> {
        let path = path.into();
        let listener = bind_uds(&path)?;
        let wake = Arc::new(WakeFd::new()?);
        let completions: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));

        // Executor pool: bounded by what admission control can have
        // running or queued at once, plus one slot for control ops
        // (ping/stats/shutdown never block on admission).
        let cfg = service.config();
        let pool = (cfg.max_concurrent + cfg.queue_depth + 1).max(2);
        let mut executors = Vec::with_capacity(pool);
        for i in 0..pool {
            let rx = Arc::clone(&rx);
            let svc = Arc::clone(&service);
            let completions = Arc::clone(&completions);
            let wake = Arc::clone(&wake);
            executors.push(
                std::thread::Builder::new()
                    .name(format!("light-serve-exec{i}"))
                    .spawn(move || executor_loop(&rx, &svc, &completions, &wake))?,
            );
        }

        let rpath = path.clone();
        let rwake = Arc::clone(&wake);
        let reactor = std::thread::Builder::new()
            .name("light-serve-reactor".into())
            .spawn(move || {
                let r = reactor_loop(&service, listener, &rpath, &rwake, &completions, &tx);
                // The jobs sender drops here; executors exit on recv error.
                std::fs::remove_file(&rpath).ok();
                r
            })?;
        Ok(ReactorServer {
            reactor,
            executors,
            wake,
            path,
        })
    }

    /// The socket path being served.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// The raw wakeup fd, for wiring into a signal handler (a single
    /// 8-byte `write` is async-signal-safe).
    pub fn wake_fd(&self) -> RawFd {
        self.wake.fd
    }

    /// Wake the reactor so it re-checks the drain flag now.
    pub fn wake(&self) {
        self.wake.wake();
    }

    /// Wait for the reactor and executor pool to finish. Returns after a
    /// drain has been signalled on the service and every connection has
    /// been flushed and closed.
    pub fn join(self) -> io::Result<()> {
        let r = match self.reactor.join() {
            Ok(r) => r,
            Err(_) => Err(io::Error::other("reactor thread panicked")),
        };
        for h in self.executors {
            h.join().ok();
        }
        r
    }
}

fn executor_loop(
    rx: &Mutex<mpsc::Receiver<Job>>,
    service: &QueryService,
    completions: &Mutex<Vec<(u64, String)>>,
    wake: &WakeFd,
) {
    loop {
        // Hold the lock only across the blocking recv; idle executors
        // queue on the mutex instead.
        let job = match lock_recover(rx).recv() {
            Ok(j) => j,
            Err(_) => return, // reactor exited
        };
        // handle_line has its own containment, but a panic escaping it
        // (dispatch failpoint, protocol bug) must not wedge the
        // connection — in_flight would never clear. Recover the id from
        // the raw line so the response still correlates client-side.
        let resp = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            light_failpoint::fail_point!("serve::dispatch");
            service.handle_line(&job.line)
        }))
        .unwrap_or_else(|payload| {
            service.metrics.note_panic();
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            protocol::render_internal(
                &protocol::echo_id(&job.line),
                &msg,
                &[("stage", "executor")],
            )
        });
        lock_recover(completions).push((job.conn, resp));
        wake.wake();
    }
}

fn reactor_loop(
    service: &QueryService,
    listener: UnixListener,
    path: &std::path::Path,
    wake: &WakeFd,
    completions: &Mutex<Vec<(u64, String)>>,
    jobs: &mpsc::Sender<Job>,
) -> io::Result<()> {
    let epoll = Epoll::new()?;
    epoll.add(listener.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
    epoll.add(wake.fd, sys::EPOLLIN, TOKEN_WAKE)?;

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_id: u64 = FIRST_CONN;
    let mut listener: Option<UnixListener> = Some(listener);
    let mut events: Vec<sys::EpollEvent> = Vec::with_capacity(256);
    let mut accept_backoff = Duration::from_millis(10);
    let mut fatal: io::Result<()> = Ok(());
    let mut last_sweep = Instant::now();

    loop {
        // Drain transition: stop accepting, shed every connection with no
        // submitted work left (half-received lines are abandoned — see
        // Conn::drain_sheddable). Connections with in-flight or pending
        // requests, or an unflushed response, stay until that work
        // completes and the bytes reach the socket — a query finishing
        // *after* this sweep still gets its response before FIN.
        if service.is_draining() {
            if let Some(l) = listener.take() {
                epoll.del(l.as_raw_fd());
                std::fs::remove_file(path).ok();
            }
            let shed: Vec<u64> = conns
                .iter()
                .filter(|(_, c)| c.drain_sheddable())
                .map(|(&id, _)| id)
                .collect();
            for id in shed {
                close_conn(&epoll, &mut conns, id);
            }
            if conns.is_empty() {
                return fatal;
            }
        } else if listener.is_none() {
            // Listener died (fatal accept error) with no drain requested:
            // nothing will ever connect again, so request one.
            service.shutdown_token().cancel();
            continue;
        }

        epoll.wait(&mut events, HEARTBEAT)?;

        // Slowloris guard, at heartbeat cadence: a connection that has
        // held a partial request line past the idle timeout is hung up
        // on. Fully idle connections (empty inbuf) are never touched —
        // parked clients stay cheap and welcome.
        if let Some(limit) = service.config().idle_timeout {
            if last_sweep.elapsed() >= HEARTBEAT.min(limit) {
                last_sweep = Instant::now();
                let stalled: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| c.partial_since.is_some_and(|t| t.elapsed() >= limit))
                    .map(|(&id, _)| id)
                    .collect();
                for id in stalled {
                    close_conn(&epoll, &mut conns, id);
                }
            }
        }

        let mut touched: Vec<u64> = Vec::new();
        let ready: Vec<sys::EpollEvent> = events.clone();
        for ev in ready {
            let (token, bits) = (ev.data, ev.events);
            match token {
                TOKEN_WAKE => wake.drain(),
                TOKEN_LISTENER => {
                    if let Some(l) = &listener {
                        match accept_ready(l, &epoll, &mut conns, &mut next_id, &mut accept_backoff)
                        {
                            Ok(newly) => touched.extend(newly),
                            Err(e) => {
                                // Fatal listener failure: report it, stop
                                // accepting, and drain what remains.
                                eprintln!("serve: fatal accept error: {e}");
                                fatal = Err(e);
                                if let Some(l) = listener.take() {
                                    epoll.del(l.as_raw_fd());
                                }
                            }
                        }
                    }
                }
                id => {
                    let Some(conn) = conns.get_mut(&id) else {
                        continue;
                    };
                    let mut dead =
                        bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 && bits & sys::EPOLLIN == 0;
                    if bits & sys::EPOLLIN != 0 {
                        dead |= !guarded_read(conn, service);
                        conn.partial_since = if conn.inbuf.is_empty() {
                            None
                        } else {
                            conn.partial_since.or_else(|| Some(Instant::now()))
                        };
                    }
                    if bits & sys::EPOLLOUT != 0 {
                        dead |= !guarded_write(conn, service);
                    }
                    if dead {
                        close_conn(&epoll, &mut conns, id);
                    } else {
                        touched.push(id);
                    }
                }
            }
        }

        // Apply finished responses, then dispatch each touched
        // connection's next pending line and refresh epoll interest.
        for (id, resp) in lock_recover(completions).drain(..) {
            if let Some(conn) = conns.get_mut(&id) {
                conn.in_flight = false;
                conn.outbuf.extend_from_slice(resp.as_bytes());
                conn.outbuf.push(b'\n');
                if !guarded_write(conn, service) {
                    close_conn(&epoll, &mut conns, id);
                    continue;
                }
                touched.push(id);
            }
            // else: the connection died while its request was executing;
            // the response has nowhere to go.
        }
        for id in touched {
            let Some(conn) = conns.get_mut(&id) else {
                continue;
            };
            dispatch(id, conn, jobs);
            if conn.drained() {
                close_conn(&epoll, &mut conns, id);
                continue;
            }
            let want = conn.wanted();
            if want != conn.interest {
                conn.interest = want;
                // A failed re-registration dooms only this connection.
                if epoll.modify(conn.stream.as_raw_fd(), want, id).is_err() {
                    close_conn(&epoll, &mut conns, id);
                }
            }
        }
    }
}

/// Accept every queued connection. Returns the new connection ids, or the
/// fatal listener error. Transient failures back off (capped) without
/// blocking the reactor for long.
fn accept_ready(
    listener: &UnixListener,
    epoll: &Epoll,
    conns: &mut HashMap<u64, Conn>,
    next_id: &mut u64,
    backoff: &mut Duration,
) -> io::Result<Vec<u64>> {
    let mut newly = Vec::new();
    loop {
        match listener.accept() {
            Ok((stream, _addr)) => {
                *backoff = Duration::from_millis(10);
                // Per-connection setup failures drop that connection only.
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let id = *next_id;
                *next_id += 1;
                if epoll.add(stream.as_raw_fd(), sys::EPOLLIN, id).is_err() {
                    continue;
                }
                let mut conn = Conn::new(stream);
                conn.interest = sys::EPOLLIN;
                conns.insert(id, conn);
                newly.push(id);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if accept_error_is_transient(&e) => {
                eprintln!("serve: transient accept error: {e}");
                // Level-triggered listener readiness would spin on EMFILE;
                // a short capped sleep throttles the retry. Connections
                // already accepted keep being served after it.
                std::thread::sleep(*backoff);
                *backoff = (*backoff * 2).min(Duration::from_millis(640));
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(newly)
}

/// [`conn_read`] with panic containment: an unwind from connection I/O
/// (the `serve::reactor_read` failpoint models one) kills that connection
/// only — never the reactor thread, which every other connection shares.
fn guarded_read(conn: &mut Conn, service: &QueryService) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| conn_read(conn, service)))
        .unwrap_or_else(|_| {
            service.metrics.note_panic();
            false
        })
}

/// [`conn_write`] with the same containment as [`guarded_read`].
fn guarded_write(conn: &mut Conn, service: &QueryService) -> bool {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| conn_write(conn))).unwrap_or_else(
        |_| {
            service.metrics.note_panic();
            false
        },
    )
}

/// Drain readable bytes and split complete lines into `pending`. Returns
/// false if the connection must be closed immediately (hard error).
fn conn_read(conn: &mut Conn, service: &QueryService) -> bool {
    light_failpoint::fail_point!("serve::reactor_read");
    let mut chunk = [0u8; 8192];
    loop {
        if conn.pending.len() >= PENDING_CAP || conn.closing {
            return true; // backpressure: leave the rest in the socket
        }
        match (&conn.stream).read(&mut chunk) {
            Ok(0) => {
                // EOF: a final unterminated line still gets served (same
                // semantics as the BufRead transport).
                if !conn.inbuf.is_empty() {
                    let line = std::mem::take(&mut conn.inbuf);
                    queue_line(conn, &line);
                }
                conn.closing = true;
                return true;
            }
            Ok(n) => {
                conn.inbuf.extend_from_slice(&chunk[..n]);
                while let Some(pos) = conn.inbuf.iter().position(|&b| b == b'\n') {
                    let rest = conn.inbuf.split_off(pos + 1);
                    let line = std::mem::replace(&mut conn.inbuf, rest);
                    queue_line(conn, &line);
                    if conn.closing {
                        return true;
                    }
                }
                if conn.inbuf.len() > MAX_REQUEST_BYTES {
                    // Oversized mid-line: answer the typed error for what
                    // we have, then hang up (stream position is
                    // unrecoverable), exactly like the thread transport.
                    let line = std::mem::take(&mut conn.inbuf);
                    let resp = service.handle_line(&String::from_utf8_lossy(&line));
                    conn.outbuf.extend_from_slice(resp.as_bytes());
                    conn.outbuf.push(b'\n');
                    conn.closing = true;
                    return true;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Queue one raw request line (terminator included) for dispatch. Blank
/// lines are skipped; a line beyond [`MAX_REQUEST_BYTES`] marks the
/// connection oversized-closing (answered by the dispatcher as the last
/// line).
fn queue_line(conn: &mut Conn, raw: &[u8]) {
    let line = String::from_utf8_lossy(raw);
    if raw.len() > MAX_REQUEST_BYTES {
        conn.pending.push_back(line.into_owned());
        conn.closing = true;
        return;
    }
    let trimmed = line.trim();
    if !trimmed.is_empty() {
        conn.pending.push_back(trimmed.to_string());
    }
}

/// Hand the connection's next pending line to the executors, unless one
/// is already in flight (per-connection FIFO ordering).
fn dispatch(id: u64, conn: &mut Conn, jobs: &mpsc::Sender<Job>) {
    if conn.in_flight {
        return;
    }
    if let Some(line) = conn.pending.pop_front() {
        conn.in_flight = true;
        // A send error means the executors are gone (shutdown race);
        // the connection will be shed by the drain path.
        let _ = jobs.send(Job { conn: id, line });
    }
}

/// Flush as much of `outbuf` as the socket accepts. Returns false on a
/// hard write error (peer gone).
fn conn_write(conn: &mut Conn) -> bool {
    light_failpoint::fail_point!("serve::reactor_write");
    while !conn.outbuf.is_empty() {
        match (&conn.stream).write(&conn.outbuf) {
            Ok(0) => return false,
            Ok(n) => {
                conn.outbuf.drain(..n);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    true
}

fn close_conn(epoll: &Epoll, conns: &mut HashMap<u64, Conn>, id: u64) {
    if let Some(conn) = conns.remove(&id) {
        epoll.del(conn.stream.as_raw_fd());
        // Socket closes on drop.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::GraphCatalog;
    use crate::json::Json;
    use crate::service::ServeConfig;
    use light_graph::generators;
    use std::io::{BufRead, BufReader};

    fn test_service() -> Arc<QueryService> {
        let mut catalog = GraphCatalog::new();
        catalog
            .insert("demo", generators::barabasi_albert(200, 3, 7))
            .unwrap();
        Arc::new(QueryService::new(catalog, ServeConfig::default()))
    }

    fn sock_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("light_reactor_{tag}_{}.sock", std::process::id()))
    }

    fn query_line(stream: &UnixStream, line: &str) -> String {
        let mut w = stream.try_clone().unwrap();
        w.write_all(line.as_bytes()).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut resp = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut resp)
            .unwrap();
        resp.trim().to_string()
    }

    #[test]
    fn serves_queries_and_drains_on_shutdown_request() {
        let service = test_service();
        let path = sock_path("basic");
        let _ = std::fs::remove_file(&path);
        let srv = ReactorServer::bind(Arc::clone(&service), &path).unwrap();

        // A batch of idle connections plus one active client.
        let idle: Vec<UnixStream> = (0..32)
            .map(|_| UnixStream::connect(&path).unwrap())
            .collect();
        let active = UnixStream::connect(&path).unwrap();
        for i in 0..5 {
            let resp = query_line(
                &active,
                &format!(r#"{{"op":"query","pattern":"triangle","id":{i}}}"#),
            );
            let doc = Json::parse(&resp).unwrap();
            assert_eq!(
                doc.get("status").and_then(Json::as_str),
                Some("ok"),
                "{resp}"
            );
            assert_eq!(doc.get("id").and_then(Json::as_u64), Some(i));
        }
        // Pipelined requests come back in order.
        {
            let mut w = active.try_clone().unwrap();
            for i in 100..110u64 {
                writeln!(w, r#"{{"op":"ping","id":{i}}}"#).unwrap();
            }
            w.flush().unwrap();
            let mut r = BufReader::new(active.try_clone().unwrap());
            for i in 100..110u64 {
                let mut line = String::new();
                r.read_line(&mut line).unwrap();
                let doc = Json::parse(line.trim()).unwrap();
                assert_eq!(doc.get("id").and_then(Json::as_u64), Some(i), "{line}");
            }
        }

        // `shutdown` drains: idle connections close, the server joins.
        let resp = query_line(&active, r#"{"op":"shutdown","id":"bye"}"#);
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        srv.wake();
        srv.join().unwrap();
        assert!(!path.exists(), "socket file must be removed on drain");
        drop(idle);
    }

    #[test]
    fn oversized_line_gets_typed_error_then_close() {
        let service = test_service();
        let path = sock_path("oversized");
        let _ = std::fs::remove_file(&path);
        let srv = ReactorServer::bind(Arc::clone(&service), &path).unwrap();

        let stream = UnixStream::connect(&path).unwrap();
        let mut w = stream.try_clone().unwrap();
        let huge = vec![b'x'; MAX_REQUEST_BYTES + 100];
        w.write_all(&huge).unwrap();
        w.write_all(b"\n").unwrap();
        w.flush().unwrap();
        let mut resp = String::new();
        BufReader::new(stream.try_clone().unwrap())
            .read_line(&mut resp)
            .unwrap();
        assert!(resp.contains("\"error\""), "{resp}");
        // The daemon hangs up after answering.
        let mut rest = String::new();
        let n = BufReader::new(stream).read_line(&mut rest).unwrap();
        assert_eq!(n, 0, "connection must close after an oversized line");

        service.shutdown_token().cancel();
        srv.wake();
        srv.join().unwrap();
    }

    #[test]
    fn refuses_live_daemon_socket() {
        let service = test_service();
        let path = sock_path("live");
        let _ = std::fs::remove_file(&path);
        let srv = ReactorServer::bind(Arc::clone(&service), &path).unwrap();
        let err = ReactorServer::bind(Arc::clone(&service), &path)
            .err()
            .expect("binding over a live daemon must fail");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        service.shutdown_token().cancel();
        srv.wake();
        srv.join().unwrap();
    }
}
