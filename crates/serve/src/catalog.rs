//! The graph catalog: named data graphs, loaded once, shared by every
//! query for the lifetime of the daemon — and, since the dynamic-graph
//! work, *mutable* through batched edge updates.
//!
//! This is the amortization the paper's serving story assumes — load and
//! preprocess the data graph once, answer many queries against it. Each
//! entry holds its serving state behind a read/write lock: a
//! [`DeltaGraph`] overlay (immutable base CSR plus pending edge buffers),
//! the materialized merged view workers borrow concurrently, precomputed
//! [`GraphStats`], and a monotone **generation** counter that bumps on
//! every successful update. The generation is the cache-invalidation
//! contract: plan-cache keys and cross-query aux stores embed it, so a
//! mutation can never serve stale derived state (see DESIGN.md §17).
//!
//! Entries come from three sources:
//!
//! * binary `LIGHTCSR` snapshots (`light convert` output) — the fast path;
//! * SNAP-style text edge lists — parsed and relabeled on load;
//! * `dataset:<name>[@scale]` specs — the built-in simulated datasets.
//!
//! Every graph is normalized to the degree-ordered ID space on the way in
//! (symmetry breaking relies on it, see `light_graph::ordered`): text
//! lists are always relabeled; snapshots are trusted but verified, and
//! relabeled with a warning if they fail the check. Mutated graphs are
//! *not* re-normalized — the engine only needs a fixed total vertex order
//! for symmetry breaking, and relabeling live IDs would break clients.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use light_graph::datasets::Dataset;
use light_graph::delta::{ApplyReport, DeltaGraph};
use light_graph::io::{FileStamp, GraphFormat};
use light_graph::stats::{compute_stats, GraphStats};
use light_graph::{CsrGraph, VertexId};

/// The mutable serving state of one entry, swapped atomically under the
/// entry's write lock on every committed update.
#[derive(Debug)]
struct LiveState {
    /// Base CSR plus pending insert/delete buffers.
    delta: DeltaGraph,
    /// The materialized current view (`delta.merged_arc()`, cached).
    /// Clean overlays alias the base `Arc` — zero copy.
    graph: Arc<CsrGraph>,
    /// Stats of `graph`, recomputed on every update (graphs served here
    /// are modest; incremental triangle maintenance is future work).
    stats: GraphStats,
    /// Storage backend of the *base* (`"heap"` or `"mmap"`).
    backend: &'static str,
    /// SIGBUS guard for mmap-backed bases: the backing file's fingerprint
    /// at map time. Heap-backed state carries `None`.
    stamp: Option<FileStamp>,
    /// Monotone update counter. Starts at 0 on load; every committed
    /// update (including pure compactions) increments it.
    generation: u64,
}

/// The result of one committed [`CatalogEntry::apply_update`] batch.
#[derive(Debug)]
pub struct UpdateOutcome {
    /// The entry's generation *after* the commit.
    pub generation: u64,
    /// Normalized edges whose presence actually changed.
    pub report: ApplyReport,
    /// The merged view before the batch (for delta counting).
    pub pre: Arc<CsrGraph>,
    /// The merged view after the batch.
    pub post: Arc<CsrGraph>,
    /// Pending overlay edges after the batch (0 if compacted).
    pub pending: usize,
    /// Whether this update folded the overlay into a fresh base (and, for
    /// snapshot-backed entries, rewrote + re-stamped the snapshot file).
    pub compacted: bool,
}

/// One named graph resident in the daemon.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Catalog name clients address the graph by.
    pub name: String,
    /// Where the graph came from (path or dataset spec).
    pub source: String,
    /// Source format (`"snapshot"`, `"edge-list"`, `"dataset"`, `"memory"`).
    pub format: &'static str,
    /// Wall-clock load + normalization + stats time, milliseconds.
    pub load_ms: f64,
    /// Sticky health flag, shared across clones. Flips to `false` the
    /// first time [`CatalogEntry::check_health`] sees the backing file
    /// shrunk, replaced, or modified — and flips back **only** when the
    /// entry itself replaces the file (compaction rewrites the snapshot
    /// and re-stamps; an external replacement stays fatal).
    pub healthy: Arc<AtomicBool>,
    /// Serving state, shared across clones.
    live: Arc<RwLock<LiveState>>,
    /// Serializes writers: updates are prepared off-lock and committed
    /// under `live`'s write lock, so only one batch may be in flight.
    update_lock: Arc<Mutex<()>>,
    /// Whether compaction re-opens rewritten snapshots through mmap.
    prefer_mmap: bool,
}

/// Read-lock with poison recovery: a writer that panicked *before* the
/// commit left the previous consistent state in place (see
/// [`CatalogEntry::apply_update`]), so serving through poison is safe.
fn read_recover<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(|p| p.into_inner())
}

fn write_recover<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(|p| p.into_inner())
}

impl CatalogEntry {
    fn from_graph(
        name: &str,
        source: &str,
        format: &'static str,
        graph: CsrGraph,
        stamp: Option<FileStamp>,
        load_started: Instant,
        prefer_mmap: bool,
    ) -> CatalogEntry {
        // Warm hint for mapped graphs: start readahead on the CSR arrays
        // now so the stats pass below (and the first query) fault fewer
        // cold pages. Advice only — the pages stay evictable.
        graph.advise_willneed();
        let stats = compute_stats(&graph);
        let backend = graph.backend().name();
        let graph = Arc::new(graph);
        CatalogEntry {
            name: name.to_string(),
            source: source.to_string(),
            format,
            load_ms: load_started.elapsed().as_secs_f64() * 1e3,
            healthy: Arc::new(AtomicBool::new(true)),
            live: Arc::new(RwLock::new(LiveState {
                delta: DeltaGraph::new(Arc::clone(&graph)),
                graph,
                stats,
                backend,
                stamp,
                generation: 0,
            })),
            update_lock: Arc::new(Mutex::new(())),
            prefer_mmap,
        }
    }

    /// The current merged view. Cheap: one read lock + `Arc` clone.
    pub fn graph(&self) -> Arc<CsrGraph> {
        Arc::clone(&read_recover(&self.live).graph)
    }

    /// The merged view together with the generation it belongs to, read
    /// under one lock so a query's plan-cache key and execution graph can
    /// never straddle an update.
    pub fn view(&self) -> (Arc<CsrGraph>, u64) {
        let st = read_recover(&self.live);
        (Arc::clone(&st.graph), st.generation)
    }

    /// Stats of the current view (recomputed at load and on every update).
    pub fn stats(&self) -> GraphStats {
        read_recover(&self.live).stats
    }

    /// Storage backend of the current base (`"heap"` or `"mmap"`).
    pub fn backend(&self) -> &'static str {
        read_recover(&self.live).backend
    }

    /// The entry's update generation (0 until the first update commits).
    pub fn generation(&self) -> u64 {
        read_recover(&self.live).generation
    }

    /// Pending overlay edges not yet folded into the base.
    pub fn pending_edges(&self) -> usize {
        read_recover(&self.live).delta.pending_edges()
    }

    /// Apply one batch of edge deletes-then-inserts, commit it
    /// transactionally, and bump the generation.
    ///
    /// The batch is prepared on a *clone* of the overlay while readers
    /// keep serving the old state; nothing is published until the final
    /// commit under the write lock. A panic anywhere before the commit
    /// (the `serve::update_apply` failpoint sits between preparation and
    /// commit) leaves the old generation, graph, and stats fully intact.
    ///
    /// Compaction runs when `force_compact` is set or the post-batch
    /// overlay holds at least `compact_threshold` pending edges: the
    /// buffers fold into a fresh base and, for snapshot-backed entries,
    /// the v2 snapshot is atomically rewritten at `source`, re-opened
    /// (mmap when preferred), and re-stamped — after which the sticky
    /// health flag is deliberately reset, because *this* replacement is
    /// ours (the bugfix for treating every replaced file as fatal).
    ///
    /// # Errors
    /// On compaction I/O failure the whole batch is rejected and the old
    /// state stays live.
    pub fn apply_update(
        &self,
        deletes: &[(VertexId, VertexId)],
        inserts: &[(VertexId, VertexId)],
        compact_threshold: Option<usize>,
        force_compact: bool,
    ) -> Result<UpdateOutcome, String> {
        // One writer at a time; poison means a previous writer panicked
        // pre-commit, which left `live` consistent — recover and proceed.
        let _writer = self.update_lock.lock().unwrap_or_else(|p| p.into_inner());

        // Snapshot the current state under a short read lock.
        let (mut delta, pre) = {
            let st = read_recover(&self.live);
            (st.delta.clone(), Arc::clone(&st.graph))
        };

        let report = delta.apply(deletes, inserts);
        let post = delta.merged_arc();
        let stats = compute_stats(&post);

        let compact =
            force_compact || compact_threshold.is_some_and(|t| t > 0 && delta.pending_edges() >= t);
        let mut new_stamp = None;
        let mut new_backend = None;
        if compact && delta.is_dirty() {
            delta.compact();
            if self.format == GraphFormat::Snapshot.name() {
                // Durable compaction: atomically rewrite the snapshot the
                // entry was loaded from, re-open (zero-copy when mmap is
                // preferred), and swap the fresh mapping in as the base.
                light_graph::io::save_snapshot_v2(&post, &self.source)
                    .map_err(|e| format!("compaction: cannot rewrite {}: {e}", self.source))?;
                let (reopened, _) = light_graph::io::open_any(&self.source, self.prefer_mmap)
                    .map_err(|e| format!("compaction: cannot reopen {}: {e}", self.source))?;
                let backend = reopened.backend().name();
                delta.rebase(Arc::new(reopened))?;
                new_stamp = Some(if backend == "mmap" {
                    FileStamp::of(&self.source).ok()
                } else {
                    None
                });
                new_backend = Some(backend);
            }
        }

        // Everything is computed; a panic up to here (this is the chaos
        // harness's injection site) must leave the old generation live.
        light_failpoint::fail_point!("serve::update_apply");

        let generation = {
            let mut st = write_recover(&self.live);
            st.generation += 1;
            st.graph = if compact {
                // Serve through the (possibly re-mapped) compacted base.
                Arc::clone(delta.base())
            } else {
                Arc::clone(&post)
            };
            st.stats = stats;
            if let Some(stamp) = new_stamp {
                st.stamp = stamp;
            }
            if let Some(backend) = new_backend {
                st.backend = backend;
            }
            let pending = delta.pending_edges();
            debug_assert!(!compact || pending == 0);
            st.delta = delta;
            st.generation
        };
        if compact && self.format == GraphFormat::Snapshot.name() {
            // We replaced the file ourselves and re-stamped against the
            // new inode: the entry is healthy again by construction.
            self.healthy.store(true, Ordering::Relaxed);
        }
        let pending = self.pending_edges();
        Ok(UpdateOutcome {
            generation,
            report,
            pre,
            post,
            pending,
            compacted: compact,
        })
    }

    /// Re-stat the backing file of an mmap-backed entry and return whether
    /// it is still safe to serve from. Cheap (one `stat`), called on the
    /// `health`/`catalog` ops and before every query. Unhealthy is sticky
    /// against *external* file changes; only the entry's own compaction
    /// (which re-maps and re-stamps) resets it.
    pub fn check_health(&self) -> bool {
        if !self.healthy.load(Ordering::Relaxed) {
            return false;
        }
        let Some(recorded) = read_recover(&self.live).stamp else {
            return true;
        };
        // A stat failure means the file is gone (unlinked without a
        // replacement): the mapping is still readable per POSIX, but the
        // graph can never be reloaded — treat it like a replacement.
        let ok = match FileStamp::of(&self.source) {
            Ok(fresh) => recorded.still_valid(&fresh),
            Err(_) => false,
        };
        if !ok {
            self.healthy.store(false, Ordering::Relaxed);
        }
        ok
    }
}

/// The set of graphs a daemon serves, addressed by name.
#[derive(Debug)]
pub struct GraphCatalog {
    entries: Vec<CatalogEntry>,
    prefer_mmap: bool,
}

impl Default for GraphCatalog {
    fn default() -> Self {
        GraphCatalog {
            entries: Vec::new(),
            // Zero-copy open is the daemon's whole value proposition for
            // v2 snapshots; opt out per-daemon with `--no-mmap`.
            prefer_mmap: true,
        }
    }
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        GraphCatalog::default()
    }

    /// Whether v2 snapshots open zero-copy through mmap (default) or are
    /// decoded onto the heap. Affects entries loaded *after* the call.
    pub fn set_prefer_mmap(&mut self, prefer: bool) {
        self.prefer_mmap = prefer;
    }

    /// Load a comma-separated catalog spec: `name=path` entries where the
    /// path is a snapshot or edge list (auto-detected by magic bytes), or
    /// `name=dataset:<ds>[@scale]` for a built-in simulated dataset
    /// (default scale 0.1). Duplicate names are an error.
    pub fn load_spec(&mut self, spec: &str) -> Result<(), String> {
        for item in spec.split(',').filter(|s| !s.is_empty()) {
            let (name, source) = item
                .split_once('=')
                .ok_or_else(|| format!("catalog entry {item:?}: expected name=path"))?;
            self.load_entry(name, source)?;
        }
        Ok(())
    }

    /// Load one `name = source` catalog entry (see [`Self::load_spec`]).
    pub fn load_entry(&mut self, name: &str, source: &str) -> Result<(), String> {
        if name.is_empty() {
            return Err(format!("catalog entry for {source:?}: empty name"));
        }
        if self.get(name).is_some() {
            return Err(format!("duplicate catalog name {name:?}"));
        }
        let start = Instant::now();
        let (raw, format) = if let Some(spec) = source.strip_prefix("dataset:") {
            let (ds_name, scale) = match spec.split_once('@') {
                Some((d, s)) => (
                    d,
                    s.parse::<f64>()
                        .map_err(|e| format!("catalog entry {name:?}: bad scale {s:?}: {e}"))?,
                ),
                None => (spec, 0.1),
            };
            let ds = Dataset::ALL
                .into_iter()
                .find(|d| d.name() == ds_name)
                .ok_or_else(|| format!("catalog entry {name:?}: unknown dataset {ds_name:?}"))?;
            (ds.build_scaled(scale), "dataset")
        } else {
            let (g, f) = light_graph::io::open_any(source, self.prefer_mmap)
                .map_err(|e| format!("catalog entry {name:?}: cannot load {source}: {e}"))?;
            (g, f.name())
        };
        // Normalize to the degree-ordered ID space symmetry breaking needs.
        // Datasets are built ordered and snapshots are written ordered by
        // `light convert`, so the relabel is usually a no-op check.
        let graph = if light_graph::ordered::is_degree_ordered(&raw) {
            raw
        } else {
            if format == GraphFormat::Snapshot.name() {
                eprintln!(
                    "warning: snapshot {source} is not degree-ordered; relabeling \
                     (regenerate it with `light convert` to skip this)"
                );
            }
            light_graph::ordered::into_degree_ordered(&raw).0
        };
        // Only mmap-backed graphs can SIGBUS on file truncation; stamp
        // them at map time so health checks can catch it first.
        let stamp = if graph.backend().name() == "mmap" {
            FileStamp::of(source).ok()
        } else {
            None
        };
        self.entries.push(CatalogEntry::from_graph(
            name,
            source,
            format,
            graph,
            stamp,
            start,
            self.prefer_mmap,
        ));
        Ok(())
    }

    /// Insert an already-built graph (tests, embedding). The graph is
    /// relabeled if it is not degree-ordered.
    pub fn insert(&mut self, name: &str, g: CsrGraph) -> Result<(), String> {
        if self.get(name).is_some() {
            return Err(format!("duplicate catalog name {name:?}"));
        }
        let start = Instant::now();
        let graph = if light_graph::ordered::is_degree_ordered(&g) {
            g
        } else {
            light_graph::ordered::into_degree_ordered(&g).0
        };
        self.entries.push(CatalogEntry::from_graph(
            name,
            "<memory>",
            "memory",
            graph,
            None,
            start,
            self.prefer_mmap,
        ));
        Ok(())
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The sole entry, when the catalog has exactly one — lets clients
    /// omit `"graph"` on single-graph daemons.
    pub fn sole_entry(&self) -> Option<&CatalogEntry> {
        match self.entries.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// All entries in load order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-check every entry's backing file (the mmap SIGBUS guard) and
    /// return `(healthy, total)`. Entries that fail stay unhealthy.
    pub fn check_health(&self) -> (usize, usize) {
        let healthy = self.entries.iter().filter(|e| e.check_health()).count();
        (healthy, self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_graph::generators;

    #[test]
    fn loads_both_file_formats_and_normalizes() {
        let dir = std::env::temp_dir().join("light_serve_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(120, 3, 9);
        let text = dir.join("g.txt");
        let bin = dir.join("g.bin");
        light_graph::io::write_edge_list(&g, std::fs::File::create(&text).unwrap()).unwrap();
        light_graph::io::save_snapshot(&g, &bin).unwrap();

        let mut cat = GraphCatalog::new();
        cat.load_spec(&format!("t={},b={}", text.display(), bin.display()))
            .unwrap();
        assert_eq!(cat.len(), 2);
        let t = cat.get("t").unwrap();
        let b = cat.get("b").unwrap();
        assert_eq!(t.format, "edge-list");
        assert_eq!(b.format, "snapshot");
        // Both normalize to degree-ordered form with identical stats.
        assert!(light_graph::ordered::is_degree_ordered(&t.graph()));
        assert!(light_graph::ordered::is_degree_ordered(&b.graph()));
        assert_eq!(t.stats().num_edges, b.stats().num_edges);
        assert_eq!(t.stats().triangles, b.stats().triangles);
        assert!(cat.sole_entry().is_none());
        // v1 snapshots and text lists always decode onto the heap.
        assert_eq!(t.backend(), "heap");
        assert_eq!(b.backend(), "heap");
        // Fresh entries start at generation 0 with a clean overlay.
        assert_eq!(t.generation(), 0);
        assert_eq!(t.pending_edges(), 0);

        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn v2_snapshot_opens_zero_copy_and_matches_heap() {
        let dir = std::env::temp_dir().join(format!("light_serve_cat_v2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(200, 3, 7);
        // Write degree-ordered so the mapped graph is served as-is.
        let (ordered, _) = light_graph::ordered::into_degree_ordered(&g);
        let v2 = dir.join("g.v2");
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();

        let mut mapped = GraphCatalog::new();
        mapped.load_entry("m", v2.to_str().unwrap()).unwrap();
        let mut heap = GraphCatalog::new();
        heap.set_prefer_mmap(false);
        heap.load_entry("h", v2.to_str().unwrap()).unwrap();

        let m = mapped.get("m").unwrap();
        let h = heap.get("h").unwrap();
        assert_eq!(h.backend(), "heap");
        #[cfg(all(target_os = "linux", target_endian = "little"))]
        {
            assert_eq!(m.backend(), "mmap");
            assert_eq!(m.graph().resident_bytes(), 0);
        }
        assert_eq!(*m.graph(), *h.graph());
        assert_eq!(m.stats().triangles, h.stats().triangles);

        // A truncated v2 file must come back as a typed load error.
        let bytes = std::fs::read(&v2).unwrap();
        let cut = dir.join("cut.v2");
        std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
        let err = GraphCatalog::new()
            .load_entry("c", cut.to_str().unwrap())
            .unwrap_err();
        assert!(err.contains("cannot load"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_spec_and_duplicates() {
        let mut cat = GraphCatalog::new();
        cat.load_spec("y=dataset:yt@0.02").unwrap();
        assert_eq!(cat.get("y").unwrap().format, "dataset");
        assert!(cat.sole_entry().is_some());
        assert!(cat
            .load_spec("y=dataset:yt@0.02")
            .unwrap_err()
            .contains("duplicate"));
        assert!(cat
            .load_spec("z=dataset:nope")
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(cat
            .load_spec("justapath")
            .unwrap_err()
            .contains("name=path"));
        assert!(cat
            .load_spec("w=dataset:yt@x")
            .unwrap_err()
            .contains("bad scale"));
    }

    #[test]
    fn health_flips_sticky_on_shrunk_or_replaced_snapshot() {
        let dir = std::env::temp_dir().join(format!("light_serve_cat_hp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(150, 3, 11);
        let (ordered, _) = light_graph::ordered::into_degree_ordered(&g);
        let v2 = dir.join("h.v2");
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();

        let mut cat = GraphCatalog::new();
        cat.load_entry("h", v2.to_str().unwrap()).unwrap();
        let entry = cat.get("h").unwrap().clone();

        if entry.backend() == "mmap" {
            assert!(entry.check_health());
            assert_eq!(cat.check_health(), (1, 1));

            // Shrink the backing file in place: the classic SIGBUS setup.
            let len = std::fs::metadata(&v2).unwrap().len();
            let f = std::fs::OpenOptions::new().write(true).open(&v2).unwrap();
            f.set_len(len / 2).unwrap();
            drop(f);
            assert!(!entry.check_health(), "shrunk file must flip unhealthy");
            assert_eq!(cat.check_health(), (0, 1));

            // Restoring the file does not help: the mapping is still the
            // truncated inode. Unhealthy is sticky against external writes.
            light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();
            assert!(!entry.check_health());
            // The clone inside the catalog shares the flag.
            assert!(!cat.get("h").unwrap().check_health());
        } else {
            // Heap fallback hosts: no stamp, always healthy, even after
            // the file disappears — the graph owns its bytes.
            std::fs::remove_file(&v2).ok();
            assert!(entry.check_health());
            assert_eq!(cat.check_health(), (1, 1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaced_snapshot_goes_unhealthy() {
        let dir = std::env::temp_dir().join(format!("light_serve_cat_rp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(150, 3, 13);
        let (ordered, _) = light_graph::ordered::into_degree_ordered(&g);
        let v2 = dir.join("r.v2");
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();

        let mut cat = GraphCatalog::new();
        cat.load_entry("r", v2.to_str().unwrap()).unwrap();
        if cat.get("r").unwrap().backend() == "mmap" {
            // Replace by rename (the write_atomic idiom): new inode at the
            // same path. Reading the old mapping is safe but stale.
            let tmp = dir.join("r.v2.tmp");
            light_graph::io::save_snapshot_v2(&ordered, &tmp).unwrap();
            std::fs::rename(&tmp, &v2).unwrap();
            assert!(!cat.get("r").unwrap().check_health());
            assert_eq!(cat.check_health(), (0, 1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_normalizes() {
        // A cycle is degree-regular, so already "ordered"; use a star with
        // shuffled ids via a path graph variant instead: grid is fine.
        let g = generators::grid(5, 5);
        let mut cat = GraphCatalog::new();
        cat.insert("g", g.clone()).unwrap();
        assert!(light_graph::ordered::is_degree_ordered(
            &cat.get("g").unwrap().graph()
        ));
        assert_eq!(cat.get("g").unwrap().stats().num_edges, g.num_edges());
    }

    #[test]
    fn apply_update_bumps_generation_and_serves_new_view() {
        let mut cat = GraphCatalog::new();
        cat.insert("g", generators::path(6)).unwrap();
        let e = cat.get("g").unwrap();
        let (g0, gen0) = e.view();
        assert_eq!(gen0, 0);
        let t0 = e.stats().triangles;
        assert_eq!(t0, 0);

        // Close a triangle on the path: find an interior vertex (IDs were
        // relabeled by degree ordering) and connect its two neighbors.
        let u = (0..g0.num_vertices() as u32)
            .find(|&v| g0.neighbors(v).len() >= 2)
            .expect("a path of 6 has interior vertices");
        let nbrs: Vec<u32> = g0.neighbors(u).to_vec();
        let out = e
            .apply_update(&[], &[(nbrs[0], nbrs[1])], None, false)
            .unwrap();
        assert_eq!(out.generation, 1);
        assert_eq!(e.generation(), 1);
        assert_eq!(out.report.inserted.len(), 1);
        assert!(!out.compacted);
        assert_eq!(out.pending, 1);
        assert_eq!(e.stats().triangles, t0 + 1);
        assert_eq!(e.graph().num_edges(), g0.num_edges() + 1);
        // The pre/post views bracket the batch.
        assert_eq!(out.pre.num_edges(), g0.num_edges());
        assert_eq!(out.post.num_edges(), g0.num_edges() + 1);

        // Idempotent re-insert: still bumps the generation (the catalog
        // cannot know the caller's intent), changes nothing else.
        let out2 = e
            .apply_update(&[], &[(nbrs[0], nbrs[1])], None, false)
            .unwrap();
        assert_eq!(out2.generation, 2);
        assert!(out2.report.inserted.is_empty());
        assert_eq!(out2.report.dup_inserts, 1);

        // Threshold compaction folds the overlay (memory entry: no file).
        // Deleting a *base* edge keeps the overlay dirty (deleting the
        // overlay-added chord would cancel back to clean), and breaks the
        // triangle just as well.
        let out3 = e
            .apply_update(&[(u, nbrs[0])], &[], Some(1), false)
            .unwrap();
        assert!(out3.compacted);
        assert_eq!(out3.pending, 0);
        assert_eq!(e.pending_edges(), 0);
        assert_eq!(e.stats().triangles, 0);
        assert_eq!(e.generation(), 3);
    }

    #[test]
    fn compaction_rewrites_snapshot_and_stays_healthy() {
        let dir = std::env::temp_dir().join(format!("light_serve_cat_cp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(150, 3, 17);
        let (ordered, _) = light_graph::ordered::into_degree_ordered(&g);
        let v2 = dir.join("c.v2");
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();

        let mut cat = GraphCatalog::new();
        cat.load_entry("c", v2.to_str().unwrap()).unwrap();
        let e = cat.get("c").unwrap();
        let n = e.graph().num_vertices() as u32;
        let edges0 = e.graph().num_edges();

        // Mutate, then force a durable compaction.
        let out = e
            .apply_update(&[], &[(0, n - 1), (1, n - 1)], None, true)
            .unwrap();
        assert!(out.compacted);
        assert_eq!(out.pending, 0);
        // The snapshot on disk was replaced by the entry itself: the
        // entry re-stamped and must remain healthy (the sticky-unhealthy
        // bugfix), and the rewritten file reloads to the mutated graph.
        assert!(e.check_health(), "self-compaction must not poison health");
        assert_eq!(cat.check_health(), (1, 1));
        let (reloaded, _) = light_graph::io::load_any(v2.to_str().unwrap()).unwrap();
        let served = e.graph();
        assert_eq!(reloaded.num_edges(), served.num_edges());
        assert!(served.num_edges() >= edges0);
        #[cfg(all(target_os = "linux", target_endian = "little"))]
        assert_eq!(e.backend(), "mmap", "compaction re-opens zero-copy");

        // A subsequent *external* replacement is still fatal.
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();
        if e.backend() == "mmap" {
            assert!(!e.check_health());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_readers_see_consistent_views_during_updates() {
        let mut cat = GraphCatalog::new();
        cat.insert("g", generators::barabasi_albert(300, 3, 23))
            .unwrap();
        let e = cat.get("g").unwrap().clone();
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let e = e.clone();
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let (g, _) = e.view();
                        // The served view is always a valid simple graph.
                        assert!(g.validate().is_ok());
                    }
                })
            })
            .collect();
        let n = e.graph().num_vertices() as u32;
        for i in 0..40u32 {
            let (a, b) = (i % n, (i * 7 + 1) % n);
            if a != b {
                e.apply_update(&[], &[(a, b)], Some(16), false).unwrap();
                e.apply_update(&[(a, b)], &[], Some(16), false).unwrap();
            }
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert!(e.generation() > 0);
    }
}
