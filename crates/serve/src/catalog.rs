//! The graph catalog: named data graphs, loaded once, shared by every
//! query for the lifetime of the daemon.
//!
//! This is the amortization the paper's serving story assumes — load and
//! preprocess the data graph once, answer many queries against it. Each
//! entry holds the graph behind an `Arc` (workers borrow it concurrently),
//! its precomputed [`GraphStats`], and provenance (where it came from and
//! how long it took to load), so `stats`/`catalog` responses need no
//! recomputation.
//!
//! Entries come from three sources:
//!
//! * binary `LIGHTCSR` snapshots (`light convert` output) — the fast path;
//! * SNAP-style text edge lists — parsed and relabeled on load;
//! * `dataset:<name>[@scale]` specs — the built-in simulated datasets.
//!
//! Every graph is normalized to the degree-ordered ID space on the way in
//! (symmetry breaking relies on it, see `light_graph::ordered`): text
//! lists are always relabeled; snapshots are trusted but verified, and
//! relabeled with a warning if they fail the check.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use light_graph::datasets::Dataset;
use light_graph::io::{FileStamp, GraphFormat};
use light_graph::stats::{compute_stats, GraphStats};
use light_graph::CsrGraph;

/// One named graph resident in the daemon.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Catalog name clients address the graph by.
    pub name: String,
    /// The loaded, degree-ordered graph.
    pub graph: Arc<CsrGraph>,
    /// Stats computed once at load (drives planning-free `stats` answers).
    pub stats: GraphStats,
    /// Where the graph came from (path or dataset spec).
    pub source: String,
    /// Source format (`"snapshot"`, `"edge-list"`, `"dataset"`).
    pub format: &'static str,
    /// Storage backend the graph ended up on (`"heap"` or `"mmap"`).
    pub backend: &'static str,
    /// Wall-clock load + normalization + stats time, milliseconds.
    pub load_ms: f64,
    /// SIGBUS guard for mmap-backed entries: the backing file's
    /// fingerprint at map time. Heap-backed entries (which own their
    /// bytes and cannot fault) carry `None` and are always healthy.
    pub stamp: Option<FileStamp>,
    /// Sticky health flag, shared across clones. Flips to `false` the
    /// first time [`CatalogEntry::check_health`] sees the backing file
    /// shrunk, replaced, or modified — and never flips back, because the
    /// mapping stays unsafe/stale even if the file is later restored.
    pub healthy: Arc<AtomicBool>,
}

impl CatalogEntry {
    /// Re-stat the backing file of an mmap-backed entry and return whether
    /// it is still safe to serve from. Cheap (one `stat`), called on the
    /// `health`/`catalog` ops and before every query. Unhealthy is sticky.
    pub fn check_health(&self) -> bool {
        if !self.healthy.load(Ordering::Relaxed) {
            return false;
        }
        let Some(recorded) = &self.stamp else {
            return true;
        };
        // A stat failure means the file is gone (unlinked without a
        // replacement): the mapping is still readable per POSIX, but the
        // graph can never be reloaded — treat it like a replacement.
        let ok = match FileStamp::of(&self.source) {
            Ok(fresh) => recorded.still_valid(&fresh),
            Err(_) => false,
        };
        if !ok {
            self.healthy.store(false, Ordering::Relaxed);
        }
        ok
    }
}

/// The set of graphs a daemon serves, addressed by name.
#[derive(Debug)]
pub struct GraphCatalog {
    entries: Vec<CatalogEntry>,
    prefer_mmap: bool,
}

impl Default for GraphCatalog {
    fn default() -> Self {
        GraphCatalog {
            entries: Vec::new(),
            // Zero-copy open is the daemon's whole value proposition for
            // v2 snapshots; opt out per-daemon with `--no-mmap`.
            prefer_mmap: true,
        }
    }
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        GraphCatalog::default()
    }

    /// Whether v2 snapshots open zero-copy through mmap (default) or are
    /// decoded onto the heap. Affects entries loaded *after* the call.
    pub fn set_prefer_mmap(&mut self, prefer: bool) {
        self.prefer_mmap = prefer;
    }

    /// Load a comma-separated catalog spec: `name=path` entries where the
    /// path is a snapshot or edge list (auto-detected by magic bytes), or
    /// `name=dataset:<ds>[@scale]` for a built-in simulated dataset
    /// (default scale 0.1). Duplicate names are an error.
    pub fn load_spec(&mut self, spec: &str) -> Result<(), String> {
        for item in spec.split(',').filter(|s| !s.is_empty()) {
            let (name, source) = item
                .split_once('=')
                .ok_or_else(|| format!("catalog entry {item:?}: expected name=path"))?;
            self.load_entry(name, source)?;
        }
        Ok(())
    }

    /// Load one `name = source` catalog entry (see [`Self::load_spec`]).
    pub fn load_entry(&mut self, name: &str, source: &str) -> Result<(), String> {
        if name.is_empty() {
            return Err(format!("catalog entry for {source:?}: empty name"));
        }
        if self.get(name).is_some() {
            return Err(format!("duplicate catalog name {name:?}"));
        }
        let start = Instant::now();
        let (raw, format) = if let Some(spec) = source.strip_prefix("dataset:") {
            let (ds_name, scale) = match spec.split_once('@') {
                Some((d, s)) => (
                    d,
                    s.parse::<f64>()
                        .map_err(|e| format!("catalog entry {name:?}: bad scale {s:?}: {e}"))?,
                ),
                None => (spec, 0.1),
            };
            let ds = Dataset::ALL
                .into_iter()
                .find(|d| d.name() == ds_name)
                .ok_or_else(|| format!("catalog entry {name:?}: unknown dataset {ds_name:?}"))?;
            (ds.build_scaled(scale), "dataset")
        } else {
            let (g, f) = light_graph::io::open_any(source, self.prefer_mmap)
                .map_err(|e| format!("catalog entry {name:?}: cannot load {source}: {e}"))?;
            (g, f.name())
        };
        // Normalize to the degree-ordered ID space symmetry breaking needs.
        // Datasets are built ordered and snapshots are written ordered by
        // `light convert`, so the relabel is usually a no-op check.
        let graph = if light_graph::ordered::is_degree_ordered(&raw) {
            raw
        } else {
            if format == GraphFormat::Snapshot.name() {
                eprintln!(
                    "warning: snapshot {source} is not degree-ordered; relabeling \
                     (regenerate it with `light convert` to skip this)"
                );
            }
            light_graph::ordered::into_degree_ordered(&raw).0
        };
        // Warm hint for mapped graphs: start readahead on the CSR arrays
        // now so the stats pass below (and the first query) fault fewer
        // cold pages. Advice only — the pages stay evictable.
        graph.advise_willneed();
        let stats = compute_stats(&graph);
        let backend = graph.backend().name();
        // Only mmap-backed graphs can SIGBUS on file truncation; stamp
        // them at map time so health checks can catch it first.
        let stamp = if backend == "mmap" {
            FileStamp::of(source).ok()
        } else {
            None
        };
        self.entries.push(CatalogEntry {
            name: name.to_string(),
            graph: Arc::new(graph),
            stats,
            source: source.to_string(),
            format,
            backend,
            load_ms: start.elapsed().as_secs_f64() * 1e3,
            stamp,
            healthy: Arc::new(AtomicBool::new(true)),
        });
        Ok(())
    }

    /// Insert an already-built graph (tests, embedding). The graph is
    /// relabeled if it is not degree-ordered.
    pub fn insert(&mut self, name: &str, g: CsrGraph) -> Result<(), String> {
        if self.get(name).is_some() {
            return Err(format!("duplicate catalog name {name:?}"));
        }
        let start = Instant::now();
        let graph = if light_graph::ordered::is_degree_ordered(&g) {
            g
        } else {
            light_graph::ordered::into_degree_ordered(&g).0
        };
        let stats = compute_stats(&graph);
        let backend = graph.backend().name();
        self.entries.push(CatalogEntry {
            name: name.to_string(),
            graph: Arc::new(graph),
            stats,
            source: "<memory>".to_string(),
            format: "memory",
            backend,
            load_ms: start.elapsed().as_secs_f64() * 1e3,
            stamp: None,
            healthy: Arc::new(AtomicBool::new(true)),
        });
        Ok(())
    }

    /// Look up an entry by name.
    pub fn get(&self, name: &str) -> Option<&CatalogEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// The sole entry, when the catalog has exactly one — lets clients
    /// omit `"graph"` on single-graph daemons.
    pub fn sole_entry(&self) -> Option<&CatalogEntry> {
        match self.entries.as_slice() {
            [one] => Some(one),
            _ => None,
        }
    }

    /// All entries in load order.
    pub fn entries(&self) -> &[CatalogEntry] {
        &self.entries
    }

    /// Number of resident graphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Re-check every entry's backing file (the mmap SIGBUS guard) and
    /// return `(healthy, total)`. Entries that fail stay unhealthy.
    pub fn check_health(&self) -> (usize, usize) {
        let healthy = self.entries.iter().filter(|e| e.check_health()).count();
        (healthy, self.entries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use light_graph::generators;

    #[test]
    fn loads_both_file_formats_and_normalizes() {
        let dir = std::env::temp_dir().join("light_serve_catalog_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(120, 3, 9);
        let text = dir.join("g.txt");
        let bin = dir.join("g.bin");
        light_graph::io::write_edge_list(&g, std::fs::File::create(&text).unwrap()).unwrap();
        light_graph::io::save_snapshot(&g, &bin).unwrap();

        let mut cat = GraphCatalog::new();
        cat.load_spec(&format!("t={},b={}", text.display(), bin.display()))
            .unwrap();
        assert_eq!(cat.len(), 2);
        let t = cat.get("t").unwrap();
        let b = cat.get("b").unwrap();
        assert_eq!(t.format, "edge-list");
        assert_eq!(b.format, "snapshot");
        // Both normalize to degree-ordered form with identical stats.
        assert!(light_graph::ordered::is_degree_ordered(&t.graph));
        assert!(light_graph::ordered::is_degree_ordered(&b.graph));
        assert_eq!(t.stats.num_edges, b.stats.num_edges);
        assert_eq!(t.stats.triangles, b.stats.triangles);
        assert!(cat.sole_entry().is_none());
        // v1 snapshots and text lists always decode onto the heap.
        assert_eq!(t.backend, "heap");
        assert_eq!(b.backend, "heap");

        std::fs::remove_file(&text).ok();
        std::fs::remove_file(&bin).ok();
    }

    #[test]
    fn v2_snapshot_opens_zero_copy_and_matches_heap() {
        let dir = std::env::temp_dir().join(format!("light_serve_cat_v2_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(200, 3, 7);
        // Write degree-ordered so the mapped graph is served as-is.
        let (ordered, _) = light_graph::ordered::into_degree_ordered(&g);
        let v2 = dir.join("g.v2");
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();

        let mut mapped = GraphCatalog::new();
        mapped.load_entry("m", v2.to_str().unwrap()).unwrap();
        let mut heap = GraphCatalog::new();
        heap.set_prefer_mmap(false);
        heap.load_entry("h", v2.to_str().unwrap()).unwrap();

        let m = mapped.get("m").unwrap();
        let h = heap.get("h").unwrap();
        assert_eq!(h.backend, "heap");
        #[cfg(all(target_os = "linux", target_endian = "little"))]
        {
            assert_eq!(m.backend, "mmap");
            assert_eq!(m.graph.resident_bytes(), 0);
        }
        assert_eq!(*m.graph, *h.graph);
        assert_eq!(m.stats.triangles, h.stats.triangles);

        // A truncated v2 file must come back as a typed load error.
        let bytes = std::fs::read(&v2).unwrap();
        let cut = dir.join("cut.v2");
        std::fs::write(&cut, &bytes[..bytes.len() / 2]).unwrap();
        let err = GraphCatalog::new()
            .load_entry("c", cut.to_str().unwrap())
            .unwrap_err();
        assert!(err.contains("cannot load"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dataset_spec_and_duplicates() {
        let mut cat = GraphCatalog::new();
        cat.load_spec("y=dataset:yt@0.02").unwrap();
        assert_eq!(cat.get("y").unwrap().format, "dataset");
        assert!(cat.sole_entry().is_some());
        assert!(cat
            .load_spec("y=dataset:yt@0.02")
            .unwrap_err()
            .contains("duplicate"));
        assert!(cat
            .load_spec("z=dataset:nope")
            .unwrap_err()
            .contains("unknown dataset"));
        assert!(cat
            .load_spec("justapath")
            .unwrap_err()
            .contains("name=path"));
        assert!(cat
            .load_spec("w=dataset:yt@x")
            .unwrap_err()
            .contains("bad scale"));
    }

    #[test]
    fn health_flips_sticky_on_shrunk_or_replaced_snapshot() {
        let dir = std::env::temp_dir().join(format!("light_serve_cat_hp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(150, 3, 11);
        let (ordered, _) = light_graph::ordered::into_degree_ordered(&g);
        let v2 = dir.join("h.v2");
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();

        let mut cat = GraphCatalog::new();
        cat.load_entry("h", v2.to_str().unwrap()).unwrap();
        let entry = cat.get("h").unwrap().clone();

        if entry.backend == "mmap" {
            assert!(entry.stamp.is_some(), "mmap entries must be stamped");
            assert!(entry.check_health());
            assert_eq!(cat.check_health(), (1, 1));

            // Shrink the backing file in place: the classic SIGBUS setup.
            let len = std::fs::metadata(&v2).unwrap().len();
            let f = std::fs::OpenOptions::new().write(true).open(&v2).unwrap();
            f.set_len(len / 2).unwrap();
            drop(f);
            assert!(!entry.check_health(), "shrunk file must flip unhealthy");
            assert_eq!(cat.check_health(), (0, 1));

            // Restoring the file does not help: the mapping is still the
            // truncated inode. Unhealthy is sticky.
            light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();
            assert!(!entry.check_health());
            // The clone inside the catalog shares the flag.
            assert!(!cat.get("h").unwrap().check_health());
        } else {
            // Heap fallback hosts: no stamp, always healthy, even after
            // the file disappears — the graph owns its bytes.
            assert!(entry.stamp.is_none());
            std::fs::remove_file(&v2).ok();
            assert!(entry.check_health());
            assert_eq!(cat.check_health(), (1, 1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replaced_snapshot_goes_unhealthy() {
        let dir = std::env::temp_dir().join(format!("light_serve_cat_rp_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = generators::barabasi_albert(150, 3, 13);
        let (ordered, _) = light_graph::ordered::into_degree_ordered(&g);
        let v2 = dir.join("r.v2");
        light_graph::io::save_snapshot_v2(&ordered, &v2).unwrap();

        let mut cat = GraphCatalog::new();
        cat.load_entry("r", v2.to_str().unwrap()).unwrap();
        if cat.get("r").unwrap().backend == "mmap" {
            // Replace by rename (the write_atomic idiom): new inode at the
            // same path. Reading the old mapping is safe but stale.
            let tmp = dir.join("r.v2.tmp");
            light_graph::io::save_snapshot_v2(&ordered, &tmp).unwrap();
            std::fs::rename(&tmp, &v2).unwrap();
            assert!(!cat.get("r").unwrap().check_health());
            assert_eq!(cat.check_health(), (0, 1));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn insert_normalizes() {
        // A cycle is degree-regular, so already "ordered"; use a star with
        // shuffled ids via a path graph variant instead: grid is fine.
        let g = generators::grid(5, 5);
        let mut cat = GraphCatalog::new();
        cat.insert("g", g.clone()).unwrap();
        assert!(light_graph::ordered::is_degree_ordered(
            &cat.get("g").unwrap().graph
        ));
        assert_eq!(cat.get("g").unwrap().stats.num_edges, g.num_edges());
    }
}
