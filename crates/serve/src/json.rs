//! Minimal JSON parsing and rendering for the serve protocol.
//!
//! The workspace has a no-serde policy (every dependency is a vendored
//! shim), so the wire format is handled by this hand-rolled module: a
//! recursive-descent parser for untrusted request lines and a writer used
//! by the response renderers. The parser is defensive — bounded recursion
//! depth, checked escapes, no panics on malformed bytes — because it sits
//! directly on the socket.

use std::fmt;

/// Nesting depth bound: protocol documents are flat (depth 2–3); anything
/// deeper is hostile input trying to overflow the parse stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`; protocol fields are small).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key → value list (duplicate keys keep the
    /// first occurrence on lookup).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document; trailing non-whitespace is an
    /// error. Errors carry the byte offset of the offence.
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            b: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    /// Object field lookup (first occurrence); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Non-negative integer payload, if this is a whole number ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.b[start..self.pos]).expect("ascii slice");
        let n: f64 = tok
            .parse()
            .map_err(|_| self.err(&format!("bad number {tok:?}")))?;
        if !n.is_finite() {
            return Err(self.err(&format!("non-finite number {tok:?}")));
        }
        Ok(Json::Num(n))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require a \uXXXX low half.
                                if self.b[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(c)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(self.err(&format!("invalid escape \\{:?}", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing
                    // at the next boundary is safe).
                    let s = &self.b[self.pos..];
                    let text = unsafe { std::str::from_utf8_unchecked(s) };
                    let ch = text.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self
            .pos
            .checked_add(4)
            .filter(|&e| e <= self.b.len())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let tok = std::str::from_utf8(&self.b[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(tok, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Escape a string for embedding between JSON double quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental one-line JSON object writer for the response renderers.
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
    any: bool,
}

impl ObjWriter {
    /// Start an empty object.
    pub fn new() -> Self {
        ObjWriter {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        self.buf.push_str(&escape(k));
        self.buf.push_str("\":");
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Add an integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Add a float field with 3 decimals (non-finite values become 0).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        let v = if v.is_finite() { v } else { 0.0 };
        self.buf.push_str(&format!("{v:.3}"));
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a pre-rendered JSON value verbatim (caller guarantees validity).
    pub fn raw(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(v);
        self
    }

    /// Finish and return the rendered object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_request() {
        let v =
            Json::parse(r#"{"op":"query","pattern":"P2","graph":"yt","timeout_ms":250}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("timeout_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn parses_nested_and_unicode() {
        let v = Json::parse(r#"{"a":[1,2.5,true,null],"s":"\u00e9\n\"x\"","o":{"k":-3}}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("é\n\"x\""));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 4),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("o").and_then(|o| o.get("k")).and_then(Json::as_f64),
            Some(-3.0)
        );
    }

    #[test]
    fn surrogate_pair() {
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err()); // lone high surrogate
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,2",
            "tru",
            "{\"a\" 1}",
            "1 2",
            "\"\\q\"",
            "nan",
            "{\"a\":1}{",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn roundtrips_through_display() {
        let src = r#"{"a":[1,true,null,"x\"y"],"b":{"c":2.5}}"#;
        let v = Json::parse(src).unwrap();
        let rendered = v.to_string();
        assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    #[test]
    fn obj_writer_renders_valid_json() {
        let mut w = ObjWriter::new();
        w.str("status", "ok")
            .u64("matches", 42)
            .f64("elapsed_ms", 1.2345)
            .bool("hit", true)
            .raw("id", "7");
        let s = w.finish();
        let v = Json::parse(&s).unwrap();
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(v.get("matches").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("hit").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert!(Json::parse("1e999").is_err()); // overflows to inf
    }
}
