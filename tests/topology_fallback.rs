//! Topology fallback coverage (ISSUE 6, satellite): the scheduler must
//! produce identical counts and sane stats whether the CPU hierarchy is
//! detected, fabricated, absent (`/sys` masked — containers), or refused
//! by the kernel (affinity syscalls failing). The CI feature matrix runs
//! this file with `LIGHT_FLAT_TOPOLOGY=1` as well, pinning the
//! kill-switch path.

use std::path::Path;

use light::core::EngineConfig;
use light::graph::generators;
use light::parallel::{run_query_parallel, CpuSlot, CpuTopology, ParallelConfig, TopologyMode};
use light::pattern::Query;

fn serial_count(q: Query, g: &light::graph::CsrGraph) -> u64 {
    light::core::run_query(&q.pattern(), g, &EngineConfig::light()).matches
}

/// Write a fabricated sysfs tree: 4 CPUs, SMT pairs (0,1) and (2,3), one
/// LLC each pair, two NUMA nodes.
fn write_fake_sysfs(root: &Path) {
    let cpu = root.join("devices/system/cpu");
    let node = root.join("devices/system/node");
    std::fs::create_dir_all(&cpu).unwrap();
    std::fs::create_dir_all(&node).unwrap();
    std::fs::write(cpu.join("online"), "0-3\n").unwrap();
    for c in 0..4usize {
        let base = cpu.join(format!("cpu{c}"));
        std::fs::create_dir_all(base.join("topology")).unwrap();
        std::fs::create_dir_all(base.join("cache/index3")).unwrap();
        let pair = if c < 2 { "0-1" } else { "2-3" };
        std::fs::write(base.join("topology/thread_siblings_list"), pair).unwrap();
        std::fs::write(base.join("cache/index3/shared_cpu_list"), pair).unwrap();
    }
    std::fs::create_dir_all(node.join("node0")).unwrap();
    std::fs::create_dir_all(node.join("node1")).unwrap();
    std::fs::write(node.join("node0/cpulist"), "0-1\n").unwrap();
    std::fs::write(node.join("node1/cpulist"), "2-3\n").unwrap();
}

#[test]
fn fake_sysfs_detection_reads_the_hierarchy() {
    let root = std::env::temp_dir().join(format!("light_topo_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    write_fake_sysfs(&root);
    let t = CpuTopology::detect_from(&root);
    std::fs::remove_dir_all(&root).unwrap();

    assert!(!t.is_flat(), "a populated sysfs tree must detect as tiered");
    assert_eq!(t.num_cpus(), 4);
    // Workers 0..4 map to the four CPUs in placement order; with SMT pair
    // == LLC == node here, siblings are Smt and cross-pair is Remote.
    use light::parallel::StealTier;
    assert_eq!(t.tier_between(0, 1), StealTier::Smt);
    assert_eq!(t.tier_between(0, 2), StealTier::Remote);
    let order = t.victim_order(0, 4);
    // Nearest first: the SMT sibling must lead the sweep.
    assert_eq!(order[0].1, StealTier::Smt);
    assert!(order.windows(2).all(|w| w[0].1 <= w[1].1));
}

#[test]
fn missing_sysfs_falls_back_to_flat_and_counts_agree() {
    let t = CpuTopology::detect_from(Path::new("/definitely/not/a/sysfs"));
    assert!(t.is_flat());

    let g = generators::barabasi_albert(400, 5, 61);
    let expect = serial_count(Query::Triangle, &g);
    let pr = run_query_parallel(
        &Query::Triangle.pattern(),
        &g,
        &EngineConfig::light(),
        &ParallelConfig::new(4).topology(TopologyMode::Custom(t)),
    );
    assert_eq!(pr.report.matches, expect);
}

#[test]
fn all_topology_modes_agree_with_serial() {
    let g = {
        let raw = generators::rmat(11, 10_000, (0.55, 0.2, 0.2, 0.05), 43);
        light::graph::ordered::into_degree_ordered(&raw).0
    };
    let expect = serial_count(Query::P2, &g);
    let fabricated = CpuTopology::from_slots(
        (0..8)
            .map(|cpu| CpuSlot {
                cpu,
                core: cpu / 2,
                llc: cpu / 4,
                node: cpu / 4,
            })
            .collect(),
    );
    for (name, mode) in [
        ("auto", TopologyMode::Auto),
        ("flat", TopologyMode::Flat),
        ("custom", TopologyMode::Custom(fabricated)),
    ] {
        let pr = run_query_parallel(
            &Query::P2.pattern(),
            &g,
            &EngineConfig::light(),
            &ParallelConfig::new(4).topology(mode),
        );
        assert_eq!(pr.report.matches, expect, "{name}");
        // Sanity on stats regardless of mode: tier counters never exceed
        // total steals, and every worker reported.
        let steals: u64 = pr.workers.iter().map(|w| w.steals).sum();
        let tiered: u64 = pr.steal_tier_totals().iter().sum();
        assert!(tiered <= steals, "{name}");
        assert_eq!(pr.workers.len(), 4, "{name}");
    }
}

#[test]
fn affinity_refusal_is_invisible_in_results() {
    // Bogus CPU ids: every sched_setaffinity call fails, all workers run
    // unpinned, and the run is indistinguishable count-wise.
    let g = generators::barabasi_albert(300, 4, 71);
    let expect = serial_count(Query::P1, &g);
    let topo = CpuTopology::from_slots(
        (0..4)
            .map(|i| CpuSlot {
                cpu: 90_000 + i,
                core: i,
                llc: 0,
                node: 0,
            })
            .collect(),
    );
    let pr = run_query_parallel(
        &Query::P1.pattern(),
        &g,
        &EngineConfig::light(),
        &ParallelConfig::new(4).topology(TopologyMode::Custom(topo)),
    );
    assert_eq!(pr.report.matches, expect);
    assert!(
        pr.workers.iter().all(|w| w.cpu.is_none()),
        "refused affinity must not be reported as pinned"
    );
}
