//! Cross-engine equivalence: every engine variant, the parallel driver, and
//! every simulated comparator must report the same match counts as the
//! brute-force reference on arbitrary random graphs.

use proptest::prelude::*;

use light::core::{reference, EngineConfig, EngineVariant};
use light::distributed::{Budget, CflSim, CrystalSim, DualSimLike, EhSim, SeedSim};
use light::graph::{generators, CsrGraph};
use light::parallel::{run_query_parallel, ParallelConfig};
use light::pattern::Query;

fn reference_count(q: Query, g: &CsrGraph) -> u64 {
    let po = q.partial_order();
    reference::count_matches(&q.pattern(), g, Some(&po))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_variants_match_reference_on_er(
        n in 8usize..40,
        edge_factor in 1usize..4,
        seed in 0u64..500,
    ) {
        let m = (n * edge_factor).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi(n, m, seed);
        for q in [Query::Triangle, Query::P1, Query::P2, Query::P3] {
            let expect = reference_count(q, &g);
            for variant in EngineVariant::ALL {
                let cfg = EngineConfig::with_variant(variant);
                let got = light::core::run_query(&q.pattern(), &g, &cfg).matches;
                prop_assert_eq!(got, expect, "{} {}", q.name(), variant.name());
            }
        }
    }

    #[test]
    fn five_vertex_patterns_match_reference(
        n in 8usize..25,
        seed in 0u64..500,
    ) {
        let m = (2 * n).min(n * (n - 1) / 2);
        let g = generators::erdos_renyi(n, m, seed);
        for q in [Query::P4, Query::P5, Query::P6, Query::P7] {
            let expect = reference_count(q, &g);
            let got = light::core::run_query(&q.pattern(), &g, &EngineConfig::light()).matches;
            prop_assert_eq!(got, expect, "{}", q.name());
        }
    }

    #[test]
    fn parallel_matches_serial(
        n in 20usize..60,
        seed in 0u64..200,
        threads in 1usize..6,
    ) {
        let g = generators::barabasi_albert(n, 3, seed);
        for q in [Query::Triangle, Query::P2, Query::P4] {
            let serial = light::core::run_query(&q.pattern(), &g, &EngineConfig::light()).matches;
            let par = run_query_parallel(
                &q.pattern(),
                &g,
                &EngineConfig::light(),
                &ParallelConfig::new(threads),
            );
            prop_assert_eq!(par.report.matches, serial, "{} x{}", q.name(), threads);
        }
    }

    #[test]
    fn simulators_match_light(
        n in 15usize..45,
        seed in 0u64..200,
    ) {
        let g = generators::barabasi_albert(n, 3, seed);
        let budget = Budget::unlimited();
        for q in [Query::P1, Query::P2, Query::P4, Query::P6] {
            let p = q.pattern();
            let expect = light::core::run_query(&p, &g, &EngineConfig::light()).matches;
            prop_assert_eq!(SeedSim::run(&p, &g, &budget).matches, expect, "seed {}", q.name());
            prop_assert_eq!(CrystalSim::run(&p, &g, &budget).matches, expect, "crystal {}", q.name());
            prop_assert_eq!(EhSim::run(&p, &g, &budget).matches, expect, "eh {}", q.name());
            prop_assert_eq!(CflSim::run(&p, &g, &budget).matches, expect, "cfl {}", q.name());
            prop_assert_eq!(DualSimLike::run(&p, &g, &budget, 2).matches, expect, "dualsim {}", q.name());
        }
    }

    #[test]
    fn intersect_kind_never_changes_counts(
        n in 20usize..60,
        seed in 0u64..200,
    ) {
        let g = generators::barabasi_albert(n, 4, seed);
        let q = Query::P2;
        let counts: Vec<u64> = light::setops::IntersectKind::ALL
            .iter()
            .map(|&k| {
                let cfg = EngineConfig::light().intersect(k);
                light::core::run_query(&q.pattern(), &g, &cfg).matches
            })
            .collect();
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }
}
