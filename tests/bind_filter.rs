//! The bind-filter extension point: labeled subgraph matching and custom
//! pruning on top of the unlabeled engine.
//!
//! §II-B: "Unlabeled subgraph enumeration can be viewed as a special case
//! of labeled subgraph enumeration [where] all vertices have the same
//! label." The converse embedding — labels as a bind-time admission filter
//! — gives the library labeled matching without touching the planner.

use std::sync::Arc;

use light::core::{run_query, EngineConfig, MatchIter};
use light::graph::generators;
use light::pattern::Query;

#[test]
fn label_filter_restricts_matches() {
    // K6 with labels: vertices 0..3 red, 4..5 blue.
    let g = generators::complete(6);
    let labels: Arc<Vec<u8>> = Arc::new(vec![0, 0, 0, 0, 1, 1]);

    // All-red triangles: C(4,3) = 4.
    let l = labels.clone();
    let cfg = EngineConfig::light().filter(move |_, v| l[v as usize] == 0);
    assert_eq!(run_query(&Query::Triangle.pattern(), &g, &cfg).matches, 4);

    // Pattern-vertex-specific labels: u0 must be blue, u1/u2 red.
    // Matches = 2 (blue choices) * C(3,2)... careful with symmetry breaking:
    // the triangle's partial order forces φ(u0)<φ(u1)<φ(u2), but blue
    // vertices have the largest IDs in K6 (degree ties broken by ID), so
    // φ(u0) ∈ {4,5} < φ(u1) is unsatisfiable; disable symmetry breaking and
    // divide by the 2 automorphisms fixing u0 (swap u1,u2).
    let l = labels.clone();
    let cfg = EngineConfig::light()
        .symmetry(false)
        .filter(move |u, v| (l[v as usize] == 1) == (u == 0));
    let raw = run_query(&Query::Triangle.pattern(), &g, &cfg).matches;
    // u0: 2 blue choices; (u1,u2): ordered pairs of distinct reds = 4*3.
    assert_eq!(raw, 2 * 4 * 3);
}

#[test]
fn filter_composes_with_every_variant() {
    let g = generators::barabasi_albert(200, 4, 5);
    // "Label" = parity of the vertex ID.
    let mk = |variant| {
        let mut cfg = EngineConfig::with_variant(variant);
        cfg = cfg.filter(|_, v| v % 2 == 0);
        run_query(&Query::P2.pattern(), &g, &cfg).matches
    };
    let counts: Vec<u64> = light::core::EngineVariant::ALL
        .iter()
        .map(|&v| mk(v))
        .collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    // And the filtered count is strictly below the unfiltered one.
    let unfiltered = run_query(&Query::P2.pattern(), &g, &EngineConfig::light()).matches;
    assert!(counts[0] < unfiltered);
}

#[test]
fn filter_equals_post_filtering() {
    // Filtering at bind time must equal filtering the full result set.
    let g = generators::erdos_renyi(60, 200, 9);
    let p = Query::Triangle.pattern();
    let accept = |v: u32| !v.is_multiple_of(3);

    let cfg = EngineConfig::light();
    let (_, all) = light::core::run_query_collecting(&p, &g, &cfg);
    let expected = all.iter().filter(|m| m.iter().all(|&v| accept(v))).count() as u64;

    let cfg_f = EngineConfig::light().filter(move |_, v| accept(v));
    assert_eq!(run_query(&p, &g, &cfg_f).matches, expected);
}

#[test]
fn filter_works_in_iterator_and_parallel() {
    let g = generators::barabasi_albert(150, 3, 11);
    let p = Query::Triangle.pattern();
    let cfg = EngineConfig::light().filter(|_, v| v % 2 == 1);
    let serial = run_query(&p, &g, &cfg).matches;

    let plan = cfg.plan(&p, &g);
    let via_iter = MatchIter::new(&plan, &g, &cfg).count() as u64;
    assert_eq!(via_iter, serial);

    let par =
        light::parallel::run_query_parallel(&p, &g, &cfg, &light::parallel::ParallelConfig::new(3));
    assert_eq!(par.report.matches, serial);
}

#[test]
fn degree_threshold_pruning() {
    // A minimum-degree filter is sound for clique queries: every vertex of
    // a k-clique has degree >= k-1, so pruning candidates below that can
    // not lose matches.
    let g = generators::barabasi_albert(300, 4, 21);
    let p = Query::P3.pattern(); // 4-clique
    let unpruned = run_query(&p, &g, &EngineConfig::light()).matches;
    let gg = g.clone();
    let cfg = EngineConfig::light().filter(move |_, v| gg.degree(v) >= 3);
    assert_eq!(run_query(&p, &g, &cfg).matches, unpruned);
}
