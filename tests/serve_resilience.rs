//! Resilience regression tests for the serve tier, no fault injection
//! required: stalled-client (slowloris) eviction via the partial-line
//! read deadline, the drain-vs-completion race (a query in flight when
//! the daemon is told to shut down must still receive its count before
//! the connection is closed), and half-written request lines not
//! wedging a drain. Every scenario runs on the portable
//! thread-per-connection transport and, on Linux, on the epoll reactor.

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use light::core::{run_query, EngineConfig};
use light::pattern::Query;
use light::serve::json::Json;
use light::serve::{drain, GraphCatalog, QueryService, ServeConfig, SocketServer};

const WATCHDOG: Duration = Duration::from_secs(60);

/// Run `f` on a watchdog thread so a wedged drain fails the test here,
/// not as an opaque CI timeout.
fn watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let h = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            h.join().expect("worker sent a value, join cannot fail");
            v
        }
        Err(RecvTimeoutError::Disconnected) => match h.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without panicking"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("resilience case {name:?} hung past the {WATCHDOG:?} watchdog")
        }
    }
}

fn service(idle_timeout: Option<Duration>) -> Arc<QueryService> {
    let mut catalog = GraphCatalog::new();
    catalog
        .insert("g", light::graph::generators::barabasi_albert(600, 4, 2024))
        .unwrap();
    Arc::new(QueryService::new(
        catalog,
        ServeConfig {
            max_concurrent: 2,
            queue_depth: 8,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(60)),
            drain_grace: Duration::from_secs(10),
            idle_timeout,
            mem_watermark: None,
            flat_topology: false,
            // Timing-sensitive legs (slowloris, drain races): keep the
            // batch gate out of the picture.
            batch_window: None,
            shared_aux: false,
            compact_threshold: Some(32_768),
            engine: EngineConfig::light(),
        },
    ))
}

/// One bound daemon, over either transport, with a uniform join.
enum Server {
    Threads(SocketServer),
    #[cfg(target_os = "linux")]
    Reactor(light::serve::ReactorServer),
}

impl Server {
    fn bind(kind: &str, svc: Arc<QueryService>, path: &Path) -> Server {
        match kind {
            "threads" => Server::Threads(SocketServer::bind(svc, path).expect("bind threads")),
            #[cfg(target_os = "linux")]
            "reactor" => {
                Server::Reactor(light::serve::ReactorServer::bind(svc, path).expect("bind reactor"))
            }
            other => panic!("unknown transport {other:?}"),
        }
    }

    fn join(self) -> std::io::Result<()> {
        match self {
            Server::Threads(s) => s.join(),
            #[cfg(target_os = "linux")]
            Server::Reactor(s) => s.join(),
        }
    }
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "light_resilience_{tag}_{}.sock",
        std::process::id()
    ))
}

fn connect(path: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("cannot connect to {}: {e}", path.display()),
        }
    }
}

/// Send one request line and read one response line (blocking).
fn roundtrip(s: &mut UnixStream, req: &str) -> Json {
    writeln!(s, "{req}").expect("send");
    s.flush().expect("flush");
    let line = read_line(s).expect("response line before EOF");
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

/// Read up to the next newline; `None` on clean EOF.
fn read_line(s: &mut UnixStream) -> Option<String> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte) {
            Ok(0) => {
                return if buf.is_empty() {
                    None
                } else {
                    Some(String::from_utf8_lossy(&buf).into_owned())
                }
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Some(String::from_utf8_lossy(&buf).into_owned());
                }
                buf.push(byte[0]);
            }
            Err(e) => panic!("read error: {e}"),
        }
    }
}

fn transports() -> &'static [&'static str] {
    #[cfg(target_os = "linux")]
    {
        &["threads", "reactor"]
    }
    #[cfg(not(target_os = "linux"))]
    {
        &["threads"]
    }
}

/// A client that stalls mid-request (classic slowloris) must be evicted
/// once the partial-line deadline passes, and the daemon must stay fully
/// healthy for well-behaved clients afterwards.
#[test]
fn stalled_partial_line_is_evicted() {
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("slowloris/{kind}"), move || {
            let svc = service(Some(Duration::from_millis(300)));
            let path = sock_path(&format!("slowloris_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            // Half a request, no newline, then silence.
            let mut stalled = connect(&path);
            stalled
                .write_all(b"{\"op\":\"ping\"")
                .expect("partial write");
            stalled.flush().expect("flush");
            stalled
                .set_read_timeout(Some(Duration::from_secs(10)))
                .expect("read timeout");
            let start = Instant::now();
            let mut buf = [0u8; 64];
            let n = stalled
                .read(&mut buf)
                .expect("server must close, not leave us hanging");
            assert_eq!(n, 0, "{kind}: stalled conn must see EOF, got {n} bytes");
            assert!(
                start.elapsed() >= Duration::from_millis(250),
                "{kind}: evicted suspiciously early ({:?})",
                start.elapsed()
            );

            // The daemon is unharmed: a well-behaved client still works.
            let mut ok = connect(&path);
            let pong = roundtrip(&mut ok, "{\"op\":\"ping\",\"id\":\"after\"}");
            assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
            let health = roundtrip(&mut ok, "{\"op\":\"health\",\"id\":\"h\"}");
            assert_eq!(
                health.get("ready").and_then(Json::as_bool),
                Some(true),
                "{kind}: daemon must report ready after evicting a stalled client: {health:?}"
            );

            let ack = roundtrip(&mut ok, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
            assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));
            drop(ok);
            let report = drain(&svc);
            assert_eq!(report.cancelled, 0, "{kind}: idle drain cancels nothing");
            server.join().expect("clean join");
        });
    }
}

/// The drain-vs-completion race: a query already admitted when shutdown
/// arrives must still get its exact count flushed before the server
/// closes the connection — never a silent FIN, never a draining error.
#[test]
fn query_in_flight_at_shutdown_receives_its_count() {
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("drain_flush/{kind}"), move || {
            let svc = service(Some(Duration::from_secs(30)));
            let g = svc.catalog().get("g").unwrap().graph();
            let expect = run_query(&Query::P7.pattern(), &g, &EngineConfig::light()).matches;

            let path = sock_path(&format!("drainflush_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            let mut a = connect(&path);
            writeln!(
                a,
                "{{\"op\":\"query\",\"pattern\":\"p7\",\"id\":\"racer\"}}"
            )
            .unwrap();
            a.flush().unwrap();

            // Wait until the query is genuinely in flight, then pull the
            // plug from a second connection.
            let spin = Instant::now();
            while svc.in_flight() == 0 {
                assert!(
                    spin.elapsed() < Duration::from_secs(10),
                    "{kind}: query never became in-flight"
                );
                std::hint::spin_loop();
            }
            let mut b = connect(&path);
            let ack = roundtrip(&mut b, "{\"op\":\"shutdown\",\"id\":\"plug\"}");
            assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));

            // The in-flight query's response must arrive, complete and
            // correct, before the FIN.
            let line = read_line(&mut a)
                .unwrap_or_else(|| panic!("{kind}: in-flight query must get its response"));
            let resp = Json::parse(line.trim()).expect("valid JSON");
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "{kind}: in-flight query must complete, got {resp:?}"
            );
            assert_eq!(
                resp.get("matches").and_then(Json::as_u64),
                Some(expect),
                "{kind}: count must be exact"
            );
            assert_eq!(resp.get("id").and_then(Json::as_str), Some("racer"));
            assert!(
                read_line(&mut a).is_none(),
                "{kind}: exactly one response then EOF"
            );

            let report = drain(&svc);
            assert_eq!(
                report.cancelled, 0,
                "{kind}: the query finished; drain must cancel nothing"
            );
            server.join().expect("clean join");
        });
    }
}

/// A connection parked on a half-written request line must not block a
/// drain: the daemon abandons the partial line (no complete request was
/// ever submitted, so no response is owed) and exits cleanly.
#[test]
fn partial_line_connection_does_not_block_drain() {
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("drain_partial/{kind}"), move || {
            // Idle timeout far longer than the test: the drain itself,
            // not the slowloris sweep, must reclaim the connection.
            let svc = service(Some(Duration::from_secs(600)));
            let path = sock_path(&format!("drainpartial_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            let mut stalled = connect(&path);
            stalled
                .write_all(b"{\"op\":\"query\",\"pattern\":\"tri")
                .expect("partial write");
            stalled.flush().expect("flush");

            let mut b = connect(&path);
            let ack = roundtrip(&mut b, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
            assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));
            drop(b);

            let report = drain(&svc);
            assert_eq!(report.cancelled, 0);
            server
                .join()
                .expect("drain must not wait on the stalled conn");

            // The stalled client sees EOF, not a response: its request
            // was never completed, so none is owed.
            stalled
                .set_read_timeout(Some(Duration::from_secs(5)))
                .expect("read timeout");
            let mut buf = [0u8; 64];
            match stalled.read(&mut buf) {
                Ok(0) => {}
                Ok(n) => {
                    panic!("{kind}: no response owed to a half-written request, got {n} bytes")
                }
                // Server may have reset the socket on close; also fine.
                Err(_) => {}
            }
            assert!(!path.exists(), "{kind}: socket file removed on drain");
        });
    }
}
