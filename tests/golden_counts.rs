//! Golden regression counts: exact match counts for every pattern on the
//! deterministic simulated datasets at test scale (0.02).
//!
//! These values were produced by the LIGHT engine and cross-validated by
//! the SE/LM/MSC variants, the parallel driver, and (on subsets) the
//! brute-force reference. Any change to the generators, relabeling,
//! planner, or engines that silently alters results trips this test.
//!
//! (P5 is exercised on yt only — its output on the denser analogs is too
//! large for a debug-build test.)

use light::core::{run_query, EngineConfig};
use light::graph::datasets::Dataset;
use light::pattern::Query;

const PATTERNS: [Query; 7] = [
    Query::Triangle,
    Query::P1,
    Query::P2,
    Query::P3,
    Query::P4,
    Query::P6,
    Query::P7,
];

/// (dataset, N, M, counts for [triangle, P1, P2, P3, P4, P6, P7]).
///
/// Recorded under the vendored xoshiro256++ `rand` shim (see `shims/rand`);
/// the generator stream — and therefore the sampled graphs — differs from
/// the registry crate's ChaCha-based `StdRng`, so these constants were
/// regenerated and re-cross-validated when the workspace switched to the
/// offline shims.
const GOLDEN: [(Dataset, usize, usize, [u64; 7]); 6] = [
    (Dataset::Yt, 800, 2394, [257, 1931, 684, 10, 12825, 236, 0]),
    (
        Dataset::Eu,
        2048,
        8513,
        [7017, 175567, 103038, 4106, 6660642, 406034, 1490],
    ),
    (
        Dataset::Lj,
        1200,
        10755,
        [5732, 133831, 61599, 2290, 3738979, 217109, 1308],
    ),
    (
        Dataset::Ot,
        1000,
        12909,
        [14371, 465563, 252909, 11461, 21355422, 1619248, 12184],
    ),
    (
        Dataset::Uk,
        4096,
        19176,
        [16303, 560147, 301741, 11434, 26904253, 1579204, 6701],
    ),
    (
        Dataset::Fs,
        2000,
        23922,
        [14671, 481171, 208410, 7985, 17782483, 1105203, 7827],
    ),
];

#[test]
fn golden_graph_shapes() {
    for (d, n, m, _) in GOLDEN {
        let g = d.build_scaled(0.02);
        assert_eq!(g.num_vertices(), n, "{} N", d.name());
        assert_eq!(g.num_edges(), m, "{} M", d.name());
    }
}

#[test]
fn golden_counts_cheap_patterns() {
    // Output-light patterns on every dataset (debug-build friendly).
    for (d, _, _, counts) in GOLDEN {
        let g = d.build_scaled(0.02);
        for (q, &expect) in PATTERNS.iter().zip(&counts) {
            if matches!(q, Query::P4 | Query::P6) {
                continue; // output-heavy; covered by the release-mode test
            }
            let got = run_query(&q.pattern(), &g, &EngineConfig::light()).matches;
            assert_eq!(got, expect, "{} on {}", q.name(), d.name());
        }
    }
}

#[test]
fn golden_counts_heavy_patterns_on_yt() {
    let (d, _, _, counts) = GOLDEN[0];
    let g = d.build_scaled(0.02);
    for (q, &expect) in PATTERNS.iter().zip(&counts) {
        let got = run_query(&q.pattern(), &g, &EngineConfig::light()).matches;
        assert_eq!(got, expect, "{} on yt", q.name());
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "output-heavy; run with --release")]
fn golden_counts_heavy_patterns_everywhere() {
    for (d, _, _, counts) in GOLDEN {
        let g = d.build_scaled(0.02);
        for q in [Query::P4, Query::P6] {
            let idx = PATTERNS.iter().position(|&x| x == q).unwrap();
            let got = run_query(&q.pattern(), &g, &EngineConfig::light()).matches;
            assert_eq!(got, counts[idx], "{} on {}", q.name(), d.name());
        }
    }
}

#[test]
fn golden_triangles_match_substrate_counter() {
    // Independent verification path: the CSR-level triangle counter agrees
    // with the golden triangle column.
    for (d, _, _, counts) in GOLDEN {
        let g = d.build_scaled(0.02);
        assert_eq!(
            light::graph::stats::count_triangles(&g),
            counts[0],
            "{}",
            d.name()
        );
    }
}
