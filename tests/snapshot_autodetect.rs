//! Load-path correctness: `load_any` magic-byte auto-detection, the
//! `light convert` round trip, and `light count --graph` accepting both
//! text edge lists and binary snapshots with identical results.
//!
//! Lives in the root package so the CI feature matrix (which re-runs the
//! root tests with metrics/failpoint permutations) exercises the load
//! path under every configuration.

use std::process::Command;

use light::graph::io::{detect_format, load_any, save_snapshot, write_edge_list, GraphFormat};
use light::graph::CsrGraph;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_light"))
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("light_autodetect_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_graph() -> CsrGraph {
    light::graph::generators::barabasi_albert(500, 3, 99)
}

#[test]
fn load_any_roundtrips_both_formats() {
    let dir = tmpdir("roundtrip");
    let g = sample_graph();
    let text = dir.join("g.txt");
    let snap = dir.join("g.bin");
    write_edge_list(&g, std::fs::File::create(&text).unwrap()).unwrap();
    save_snapshot(&g, &snap).unwrap();

    let (gt, ft) = load_any(&text).unwrap();
    let (gs, fs) = load_any(&snap).unwrap();
    assert_eq!(ft, GraphFormat::EdgeList);
    assert_eq!(fs, GraphFormat::Snapshot);
    assert_eq!(gs, g, "snapshot load is exact");
    assert_eq!(gt.num_edges(), g.num_edges());

    assert_eq!(
        detect_format(&std::fs::read(&text).unwrap()),
        GraphFormat::EdgeList
    );
    assert_eq!(
        detect_format(&std::fs::read(&snap).unwrap()),
        GraphFormat::Snapshot
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn count_cli_agrees_across_formats() {
    let dir = tmpdir("cli");
    let g = sample_graph();
    let text = dir.join("g.txt");
    write_edge_list(&g, std::fs::File::create(&text).unwrap()).unwrap();

    // Convert through the CLI (text → snapshot), then count on both.
    let snap = dir.join("g.bin");
    let out = bin()
        .args(["convert", text.to_str().unwrap(), snap.to_str().unwrap()])
        .output()
        .expect("run convert");
    assert!(
        out.status.success(),
        "convert failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        detect_format(&std::fs::read(&snap).unwrap()),
        GraphFormat::Snapshot
    );

    let count = |path: &std::path::Path| -> String {
        let out = bin()
            .args([
                "count",
                "--pattern",
                "triangle",
                "--graph",
                path.to_str().unwrap(),
            ])
            .output()
            .expect("run count");
        assert!(
            out.status.success(),
            "count on {} failed: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        stdout
            .lines()
            .find(|l| l.starts_with("matches:"))
            .unwrap_or_else(|| panic!("no matches line in {stdout}"))
            .to_string()
    };
    assert_eq!(
        count(&text),
        count(&snap),
        "text and snapshot loads must count identically"
    );

    // Snapshot → edge list conversion round-trips the count as well.
    let back = dir.join("back.txt");
    let out = bin()
        .args([
            "convert",
            snap.to_str().unwrap(),
            back.to_str().unwrap(),
            "--to",
            "edge-list",
        ])
        .output()
        .expect("run convert back");
    assert!(out.status.success());
    assert_eq!(
        detect_format(&std::fs::read(&back).unwrap()),
        GraphFormat::EdgeList
    );
    assert_eq!(count(&back), count(&snap));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_any_surfaces_typed_errors() {
    let dir = tmpdir("errors");

    // Missing file: the io error comes through, not a silent fallback.
    let missing = dir.join("nope.bin");
    assert!(load_any(&missing).is_err());

    // Truncated snapshot: magic matches, body doesn't — must be a typed
    // snapshot error, not a misparse as an edge list.
    let trunc = dir.join("trunc.bin");
    std::fs::write(&trunc, b"LIGHTCSR").unwrap();
    let err = load_any(&trunc).unwrap_err();
    let msg = err.to_string();
    assert!(
        !msg.is_empty() && !msg.contains("line"),
        "truncated snapshot must fail as a snapshot, got: {msg}"
    );

    // Garbage text: fails as an edge list with a line diagnostic.
    let garbage = dir.join("garbage.txt");
    std::fs::write(&garbage, "this is not\nan edge list\n").unwrap();
    assert!(load_any(&garbage).is_err());

    // The CLI surfaces these as load errors (exit 1), never a crash.
    let out = bin()
        .args([
            "count",
            "--pattern",
            "triangle",
            "--graph",
            trunc.to_str().unwrap(),
        ])
        .output()
        .expect("run count");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot load"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_to_v2_roundtrips_counts_on_both_backends() {
    let dir = tmpdir("v2cli");
    let g = sample_graph();
    let text = dir.join("g.txt");
    write_edge_list(&g, std::fs::File::create(&text).unwrap()).unwrap();

    let v2 = dir.join("g.v2");
    let out = bin()
        .args([
            "convert",
            text.to_str().unwrap(),
            v2.to_str().unwrap(),
            "--to",
            "snapshot-v2",
        ])
        .output()
        .expect("run convert");
    assert!(
        out.status.success(),
        "convert --to snapshot-v2 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        detect_format(&std::fs::read(&v2).unwrap()),
        GraphFormat::Snapshot
    );

    let count = |extra: &[&str]| -> String {
        let mut args = vec!["count", "--pattern", "triangle", "--graph"];
        args.push(v2.to_str().unwrap());
        args.extend_from_slice(extra);
        let out = bin().args(&args).output().expect("run count");
        assert!(
            out.status.success(),
            "count {extra:?} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .find(|l| l.starts_with("matches:"))
            .expect("matches line")
            .to_string()
    };
    // mmap-backed (default) and heap-backed (--no-mmap) loads agree.
    assert_eq!(count(&[]), count(&["--no-mmap"]));

    // stats reports the storage backend it ended up on.
    let out = bin()
        .args(["stats", "--graph", v2.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(stdout.contains("backend:"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn convert_refuses_to_clobber_its_input() {
    let dir = tmpdir("clobber");
    let g = sample_graph();
    let snap = dir.join("g.bin");
    save_snapshot(&g, &snap).unwrap();
    let before = std::fs::read(&snap).unwrap();

    // Same path twice: typed error, input untouched.
    let out = bin()
        .args(["convert", snap.to_str().unwrap(), snap.to_str().unwrap()])
        .output()
        .expect("run convert");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("input file"));
    assert_eq!(std::fs::read(&snap).unwrap(), before, "input was modified");

    // A relative-path alias of the same file is caught too.
    let aliased = format!(
        "{}/./{}",
        dir.display(),
        snap.file_name().unwrap().to_str().unwrap()
    );
    let out = bin()
        .args(["convert", snap.to_str().unwrap(), &aliased])
        .output()
        .expect("run convert");
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(std::fs::read(&snap).unwrap(), before, "input was modified");

    // Overwriting a different existing file succeeds but warns.
    let other = dir.join("other.bin");
    std::fs::write(&other, b"old contents").unwrap();
    let out = bin()
        .args(["convert", snap.to_str().unwrap(), other.to_str().unwrap()])
        .output()
        .expect("run convert");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("overwriting"));

    std::fs::remove_dir_all(&dir).ok();
}
