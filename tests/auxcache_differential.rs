//! The auxiliary candidate cache (DESIGN.md §11) is an execution-level
//! memo: with it on, off, or thrashing under memory pressure, every engine
//! variant must enumerate exactly the same matches. These differential
//! tests are the safety net for the cache's trickiest obligations —
//! stamp-based invalidation (a stale entry surviving a guard re-binding
//! would silently corrupt counts) and watermark eviction (shedding the
//! cache mid-run must be invisible).
//!
//! Structural plans (threshold 0) force a directive onto every eligible
//! slot, so the cache is exercised even where the cost model would decline.

use proptest::prelude::*;

use light::core::{EngineConfig, EngineVariant, Outcome};
use light::graph::generators;
use light::parallel::{run_query_parallel, ParallelConfig};
use light::pattern::Query;

/// The full pattern catalog plus the triangle.
const CATALOG: [Query; 8] = [
    Query::Triangle,
    Query::P1,
    Query::P2,
    Query::P3,
    Query::P4,
    Query::P5,
    Query::P6,
    Query::P7,
];

#[test]
fn full_catalog_matches_with_cache_on_and_off() {
    // Deterministic leg: every catalog pattern, serial, both thresholds
    // (default cost-model planning and forced structural planning).
    let g = generators::barabasi_albert(250, 6, 97);
    for q in CATALOG {
        let p = q.pattern();
        let off = light::core::run_query(&p, &g, &EngineConfig::light().aux_cache(false));
        for threshold in [light::order::DEFAULT_AUX_THRESHOLD, 0.0] {
            let cfg = EngineConfig::light()
                .aux_cache(true)
                .aux_threshold(threshold);
            let on = light::core::run_query(&p, &g, &cfg);
            assert_eq!(
                on.matches,
                off.matches,
                "{} threshold {threshold}",
                q.name()
            );
            assert_eq!(on.outcome, Outcome::Complete);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn cache_never_changes_counts_serial(
        n in 20usize..60,
        k in 2usize..5,
        seed in 0u64..400,
    ) {
        let g = generators::barabasi_albert(n, k, seed);
        for q in CATALOG {
            let p = q.pattern();
            for variant in EngineVariant::ALL {
                let off = light::core::run_query(
                    &p, &g, &EngineConfig::with_variant(variant).aux_cache(false));
                // Threshold 0 maximizes directives on small random graphs,
                // where the cost model would usually say "not worth it".
                let on = light::core::run_query(
                    &p, &g,
                    &EngineConfig::with_variant(variant).aux_cache(true).aux_threshold(0.0));
                prop_assert_eq!(
                    on.matches, off.matches,
                    "{} {} n={} k={} seed={}", q.name(), variant.name(), n, k, seed
                );
            }
        }
    }

    #[test]
    fn cache_never_changes_counts_parallel(
        n in 40usize..90,
        seed in 0u64..400,
        threads in 2usize..5,
    ) {
        let g = generators::barabasi_albert(n, 4, seed);
        let pc = ParallelConfig::new(threads);
        for q in [Query::Triangle, Query::P1, Query::P2, Query::P5] {
            let p = q.pattern();
            let off = run_query_parallel(
                &p, &g, &EngineConfig::light().aux_cache(false), &pc);
            let on = run_query_parallel(
                &p, &g, &EngineConfig::light().aux_cache(true).aux_threshold(0.0), &pc);
            prop_assert_eq!(
                on.report.matches, off.report.matches,
                "{} n={} seed={} threads={}", q.name(), n, seed, threads
            );
            prop_assert!(on.failures.is_empty() && off.failures.is_empty());
        }
    }

    #[test]
    fn cache_never_changes_counts_under_eviction_pressure(
        n in 60usize..120,
        seed in 0u64..300,
    ) {
        // Watermark set between the cache-off peak and peak + cache
        // appetite: stores get skipped and entries purged mid-run, yet the
        // run must stay Complete with the exact count (the cache degrades,
        // never causes MemoryExceeded).
        let g = generators::barabasi_albert(n, 6, seed);
        for q in [Query::P1, Query::P2, Query::P5] {
            let p = q.pattern();
            let off = light::core::run_query(
                &p, &g, &EngineConfig::light().aux_cache(false));
            prop_assert_eq!(off.outcome, Outcome::Complete);
            let budget = off.stats.peak_candidate_bytes * 2 + 512;
            let on = light::core::run_query(
                &p, &g,
                &EngineConfig::light()
                    .aux_cache(true)
                    .aux_threshold(0.0)
                    .max_memory(budget));
            prop_assert_eq!(
                on.outcome, Outcome::Complete,
                "{} n={} seed={} aux={:?}", q.name(), n, seed, on.stats.aux
            );
            prop_assert_eq!(
                on.matches, off.matches,
                "{} n={} seed={}", q.name(), n, seed
            );
        }
    }
}
