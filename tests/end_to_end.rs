//! End-to-end flows through the public (umbrella) API: datasets, planning,
//! serial + parallel enumeration, budgets, and persistence.

use std::time::Duration;

use light::core::Outcome;
use light::graph::datasets::Dataset;
use light::order::QueryPlan;
use light::prelude::*;

#[test]
fn full_pipeline_on_simulated_dataset() {
    let g = Dataset::Yt.build_scaled(0.05);
    for q in [Query::Triangle, Query::P1, Query::P2, Query::P3] {
        let serial = run_query(&q.pattern(), &g, &EngineConfig::light());
        assert!(serial.is_complete());
        let par = run_query_parallel(
            &q.pattern(),
            &g,
            &EngineConfig::light(),
            &ParallelConfig::new(3),
        );
        assert_eq!(par.report.matches, serial.matches, "{}", q.name());
    }
}

#[test]
fn plans_expose_paper_structures() {
    let g = Dataset::Yt.build_scaled(0.05);
    let plan = QueryPlan::optimized(&Query::P2.pattern(), &g);
    // Lazy plan on the diamond: exactly one real intersection per path.
    assert_eq!(plan.per_path_intersections(), 1);
    // Execution order has 2n-1 ops and validates.
    assert_eq!(plan.sigma().len(), 7);
    assert!(plan.execution_order().validate(plan.pattern()).is_ok());
}

#[test]
fn snapshot_roundtrip_through_enumeration() {
    let g = Dataset::Eu.build_scaled(0.03);
    let bytes = light::graph::io::to_snapshot(&g);
    let g2 = light::graph::io::from_snapshot(bytes).unwrap();
    let a = run_query(&Query::Triangle.pattern(), &g, &EngineConfig::light()).matches;
    let b = run_query(&Query::Triangle.pattern(), &g2, &EngineConfig::light()).matches;
    assert_eq!(a, b);
}

#[test]
fn edge_list_import_path() {
    let text = "# tiny graph\n0 1\n1 2\n2 0\n2 3\n3 0\n";
    let raw = light::graph::io::read_edge_list(text.as_bytes()).unwrap();
    let (g, _) = light::graph::ordered::into_degree_ordered(&raw);
    let r = run_query(&Query::Triangle.pattern(), &g, &EngineConfig::light());
    assert_eq!(r.matches, 2); // {0,1,2} and {0,2,3}
}

#[test]
fn time_budget_is_honored_end_to_end() {
    let g = light::graph::generators::complete(200);
    let cfg = EngineConfig::light().budget(Duration::from_millis(20));
    let r = run_query(&Query::P7.pattern(), &g, &cfg);
    assert_eq!(r.outcome, Outcome::OutOfTime);
    // It must return promptly (within a generous multiple of the budget).
    assert!(r.elapsed < Duration::from_secs(5));
}

#[test]
fn all_patterns_complete_on_yt() {
    // The Fig. 8 headline at test scale: LIGHT completes every pattern on
    // the sparse dataset. (The dense analogs at debug-build speed are
    // exercised pattern-by-pattern below and at full scale by the
    // fig8_overall harness.)
    let g = Dataset::Yt.build_scaled(0.02);
    for q in Query::ALL {
        let cfg = EngineConfig::light().budget(Duration::from_secs(60));
        let r = run_query(&q.pattern(), &g, &cfg);
        assert!(r.is_complete(), "{} on yt did not complete", q.name());
    }
}

#[test]
fn dense_patterns_complete_on_every_dataset() {
    // Dense patterns have small outputs, so they stay debug-feasible on
    // every dataset analog.
    for d in Dataset::ALL {
        let g = d.build_scaled(0.01);
        for q in [Query::P2, Query::P3, Query::P7] {
            let cfg = EngineConfig::light().budget(Duration::from_secs(60));
            let r = run_query(&q.pattern(), &g, &cfg);
            assert!(
                r.is_complete(),
                "{} on {} did not complete",
                q.name(),
                d.name()
            );
        }
    }
}

#[test]
fn collecting_api_returns_verified_matches() {
    let g = Dataset::Yt.build_scaled(0.02);
    let p = Query::P2.pattern();
    let (report, matches) = light::core::run_query_collecting(&p, &g, &EngineConfig::light());
    assert_eq!(report.matches as usize, matches.len());
    for m in matches.iter().take(500) {
        for (a, b) in p.edges() {
            assert!(g.contains_edge(m[a as usize], m[b as usize]));
        }
    }
}
