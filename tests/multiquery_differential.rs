//! Differential test for multi-query (batched) execution: counts emitted
//! by a shared pass must be **bit-identical** to independent one-shot
//! engine runs, across the full pattern catalog, serial and parallel
//! drivers, aux-cache and shared-aux configurations, and with members
//! being cancelled or timing out mid-batch — one member's fate must
//! never perturb a sibling's count (ISSUE 9 / DESIGN.md §16).

use std::sync::Arc;
use std::time::Duration;

use light::core::{
    run_multi, run_query, CancelToken, EngineConfig, MemberSpec, Outcome, SharedAuxStore,
};
use light::graph::generators;
use light::graph::CsrGraph;
use light::order::{MultiPlan, QueryPlan, MAX_MULTI_MEMBERS};
use light::parallel::{run_multi_parallel, ParallelConfig};
use light::pattern::Query;

/// The full pattern catalog: the paper's P1..P7 plus the triangle.
fn catalog() -> Vec<Query> {
    let mut qs = vec![Query::Triangle];
    qs.extend(Query::ALL);
    assert!(qs.len() <= MAX_MULTI_MEMBERS);
    qs
}

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("ba", generators::barabasi_albert(300, 4, 13)),
        ("grid", generators::grid(18, 18)),
    ]
}

fn plans(qs: &[Query], g: &CsrGraph, cfg: &EngineConfig) -> Vec<Arc<QueryPlan>> {
    qs.iter()
        .map(|q| Arc::new(cfg.plan(&q.pattern(), g)))
        .collect()
}

/// One-shot reference counts under the same engine configuration.
fn one_shot(qs: &[Query], g: &CsrGraph, cfg: &EngineConfig) -> Vec<u64> {
    qs.iter()
        .map(|q| run_query(&q.pattern(), g, cfg).matches)
        .collect()
}

/// The config matrix: baseline, intra-query aux cache off, and the
/// cross-query shared aux tier on (fresh store per leg).
fn config_legs() -> Vec<(&'static str, EngineConfig)> {
    vec![
        ("base", EngineConfig::light()),
        ("aux-off", EngineConfig::light().aux_cache(false)),
        (
            "shared-aux",
            EngineConfig::light().shared_aux(Arc::new(SharedAuxStore::new(None))),
        ),
    ]
}

#[test]
fn batched_counts_match_one_shot_across_catalog_serial_and_parallel() {
    let qs = catalog();
    for (gname, g) in graphs() {
        for (leg, cfg) in config_legs() {
            let expect = one_shot(&qs, &g, &cfg);
            let mp = MultiPlan::build(&plans(&qs, &g, &cfg)).unwrap();
            let specs = vec![MemberSpec::default(); qs.len()];

            let serial = run_multi(&mp, &g, &cfg, &specs);
            for (m, q) in qs.iter().enumerate() {
                assert_eq!(
                    serial.members[m].matches,
                    expect[m],
                    "{gname}/{leg}/serial: {} must match one-shot",
                    q.name()
                );
                assert_eq!(serial.members[m].outcome, Outcome::Complete);
            }

            for threads in [2, 4] {
                let par = run_multi_parallel(&mp, &g, &cfg, &specs, &ParallelConfig::new(threads));
                assert_eq!(par.failures, 0);
                for (m, q) in qs.iter().enumerate() {
                    assert_eq!(
                        par.members[m].matches,
                        expect[m],
                        "{gname}/{leg}/{threads}t: {} must match one-shot",
                        q.name()
                    );
                    assert_eq!(par.members[m].outcome, Outcome::Complete);
                }
            }
        }
    }
}

/// Duplicate members (the common serving case: several clients asking
/// the same pattern in one window) fully share one enumeration tree and
/// each still gets the exact count.
#[test]
fn duplicate_members_each_get_the_exact_count() {
    let g = generators::barabasi_albert(300, 4, 13);
    let cfg = EngineConfig::light();
    let qs = vec![
        Query::Triangle,
        Query::P1,
        Query::Triangle,
        Query::P1,
        Query::Triangle,
    ];
    let expect = one_shot(&qs, &g, &cfg);
    let mp = MultiPlan::build(&plans(&qs, &g, &cfg)).unwrap();
    let specs = vec![MemberSpec::default(); qs.len()];
    for threads in [1, 4] {
        let par = run_multi_parallel(&mp, &g, &cfg, &specs, &ParallelConfig::new(threads));
        for (m, q) in qs.iter().enumerate() {
            assert_eq!(
                par.members[m].matches,
                expect[m],
                "{threads}t: duplicate member {m} ({}) must be exact",
                q.name()
            );
        }
    }
    // Duplicates must actually share: every member's whole plan is a
    // shared prefix with its twin.
    let st = mp.reuse_summary();
    assert!(
        st.member_shared_depth.iter().all(|&d| d >= 1),
        "duplicates must share a prefix: {st:?}"
    );
}

/// A shared store that is *warm* (fed by a previous pass) must not change
/// any count either — reuse is correctness-neutral by construction.
#[test]
fn warm_shared_store_is_count_neutral() {
    let qs = catalog();
    let g = generators::barabasi_albert(300, 4, 13);
    let store = Arc::new(SharedAuxStore::new(None));
    let cfg = EngineConfig::light().shared_aux(Arc::clone(&store));
    let expect = one_shot(&qs, &g, &EngineConfig::light());
    let mp = MultiPlan::build(&plans(&qs, &g, &cfg)).unwrap();
    let specs = vec![MemberSpec::default(); qs.len()];
    for pass in 0..3 {
        let par = run_multi_parallel(&mp, &g, &cfg, &specs, &ParallelConfig::new(4));
        for (m, q) in qs.iter().enumerate() {
            assert_eq!(
                par.members[m].matches,
                expect[m],
                "pass {pass}: {} must match one-shot against a warm store",
                q.name()
            );
        }
    }
    let c = store.counters();
    assert!(
        c.hits + c.misses > 0,
        "the shared store must actually be consulted"
    );
}

/// A member cancelled before the batch starts is isolated: it reports
/// `Cancelled`, every sibling still returns its exact one-shot count.
#[test]
fn pre_cancelled_member_never_perturbs_siblings() {
    let qs = catalog();
    let g = generators::barabasi_albert(300, 4, 13);
    for (leg, cfg) in config_legs() {
        let expect = one_shot(&qs, &g, &cfg);
        let mp = MultiPlan::build(&plans(&qs, &g, &cfg)).unwrap();
        for victim in [0, qs.len() / 2, qs.len() - 1] {
            let tok = CancelToken::new();
            tok.cancel();
            let specs: Vec<MemberSpec> = (0..qs.len())
                .map(|m| MemberSpec {
                    cancel: (m == victim).then(|| tok.clone()),
                    ..Default::default()
                })
                .collect();
            for threads in [1, 4] {
                let par = run_multi_parallel(&mp, &g, &cfg, &specs, &ParallelConfig::new(threads));
                assert_eq!(
                    par.members[victim].outcome,
                    Outcome::Cancelled,
                    "{leg}/{threads}t: victim {victim} must be cancelled"
                );
                for (m, q) in qs.iter().enumerate() {
                    if m == victim {
                        continue;
                    }
                    assert_eq!(par.members[m].outcome, Outcome::Complete);
                    assert_eq!(
                        par.members[m].matches,
                        expect[m],
                        "{leg}/{threads}t: sibling {} must be exact despite victim {victim}",
                        q.name()
                    );
                }
            }
        }
    }
}

/// A member whose budget expires mid-batch (zero budget: the earliest
/// possible expiry) is isolated the same way: `OutOfTime` for it, exact
/// counts for every sibling.
#[test]
fn timed_out_member_never_perturbs_siblings() {
    let qs = catalog();
    let g = generators::barabasi_albert(300, 4, 13);
    let cfg = EngineConfig::light();
    let expect = one_shot(&qs, &g, &cfg);
    let mp = MultiPlan::build(&plans(&qs, &g, &cfg)).unwrap();
    let victim = 1;
    let specs: Vec<MemberSpec> = (0..qs.len())
        .map(|m| MemberSpec {
            time_budget: (m == victim).then_some(Duration::ZERO),
            ..Default::default()
        })
        .collect();
    for threads in [1, 4] {
        let par = run_multi_parallel(&mp, &g, &cfg, &specs, &ParallelConfig::new(threads));
        assert_eq!(
            par.members[victim].outcome,
            Outcome::OutOfTime,
            "{threads}t: zero budget must expire"
        );
        for (m, q) in qs.iter().enumerate() {
            if m == victim {
                continue;
            }
            assert_eq!(par.members[m].outcome, Outcome::Complete);
            assert_eq!(
                par.members[m].matches,
                expect[m],
                "{threads}t: sibling {} must be exact despite the timeout",
                q.name()
            );
        }
    }
}

/// Cancellation raced against a live run: whatever the victim's final
/// outcome (it may legitimately finish first), siblings are exact.
#[test]
fn live_cancel_mid_batch_leaves_siblings_exact() {
    let qs = catalog();
    let g = generators::barabasi_albert(400, 5, 29);
    let cfg = EngineConfig::light();
    let expect = one_shot(&qs, &g, &cfg);
    let mp = MultiPlan::build(&plans(&qs, &g, &cfg)).unwrap();
    let victim = qs.len() - 1;
    let tok = CancelToken::new();
    let specs: Vec<MemberSpec> = (0..qs.len())
        .map(|m| MemberSpec {
            cancel: (m == victim).then(|| tok.clone()),
            ..Default::default()
        })
        .collect();
    let killer = {
        let tok = tok.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            tok.cancel();
        })
    };
    let par = run_multi_parallel(&mp, &g, &cfg, &specs, &ParallelConfig::new(4));
    killer.join().unwrap();
    assert!(
        matches!(
            par.members[victim].outcome,
            Outcome::Cancelled | Outcome::Complete
        ),
        "victim outcome: {:?}",
        par.members[victim].outcome
    );
    for (m, q) in qs.iter().enumerate() {
        if m == victim {
            continue;
        }
        assert_eq!(par.members[m].outcome, Outcome::Complete);
        assert_eq!(
            par.members[m].matches,
            expect[m],
            "sibling {} must be exact under a racing cancel",
            q.name()
        );
    }
}

/// End-to-end through the serve tier: a service with the gate on answers
/// concurrent same-graph queries via shared passes, and every response
/// carries the exact one-shot count (plus a `batch` size when batched).
#[test]
fn serve_tier_batched_responses_match_one_shot() {
    use light::serve::json::Json;
    use light::serve::{GraphCatalog, QueryService, ServeConfig};

    let g = generators::barabasi_albert(300, 4, 13);
    let qs = catalog();
    let expect = one_shot(&qs, &g, &EngineConfig::light());

    let mut cat = GraphCatalog::new();
    cat.insert("g", g).unwrap();
    let svc = Arc::new(QueryService::new(
        cat,
        ServeConfig {
            max_concurrent: qs.len(),
            queue_depth: 2 * qs.len(),
            batch_window: Some(Duration::from_millis(25)),
            shared_aux: true,
            ..ServeConfig::default()
        },
    ));

    for round in 0..3 {
        let handles: Vec<_> = qs
            .iter()
            .enumerate()
            .map(|(i, q)| {
                let svc = Arc::clone(&svc);
                let pat = q.name().to_string();
                std::thread::spawn(move || {
                    svc.handle_line(&format!(
                        "{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"r{round}-m{i}\"}}"
                    ))
                })
            })
            .collect();
        for (i, h) in handles.into_iter().enumerate() {
            let resp = h.join().unwrap();
            let doc = Json::parse(&resp).unwrap();
            assert_eq!(
                doc.get("status").and_then(Json::as_str),
                Some("ok"),
                "{resp}"
            );
            assert_eq!(
                doc.get("matches").and_then(Json::as_u64),
                Some(expect[i]),
                "round {round}: {} through the serve gate must be exact",
                qs[i].name()
            );
        }
    }
    // With 8 concurrent same-graph queries per round, shared passes must
    // have formed; the stats section records them.
    let stats = svc.handle_line("{\"op\":\"stats\",\"id\":\"s\"}");
    let doc = Json::parse(&stats).unwrap();
    let mq = doc.get("multiquery").expect("multiquery section");
    assert!(
        mq.get("batches").and_then(Json::as_u64).unwrap_or(0) > 0,
        "{stats}"
    );
}
