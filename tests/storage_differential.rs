//! Storage-backend differential tests: an mmap-backed `LIGHTCSR` v2 graph
//! must be indistinguishable from its heap-decoded twin everywhere the
//! engine can observe — identical structure, identical counts across the
//! full pattern catalog (serial and parallel, aux cache on and off), and
//! identical typed-error behavior on corrupt input.
//!
//! Lives in the root package so the CI feature matrix re-runs it under
//! every metrics/failpoint permutation.

use light::core::EngineConfig;
use light::graph::io::{load_snapshot, map_snapshot, open_any, save_snapshot, save_snapshot_v2};
use light::graph::{generators, CsrGraph, StorageBackend};
use light::parallel::{run_query_parallel, ParallelConfig};
use light::pattern::Query;

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("light_storage_diff_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A degree-ordered sample graph, as `light convert` would write it.
fn sample_graph() -> CsrGraph {
    let g = generators::barabasi_albert(400, 3, 2024);
    light::graph::ordered::into_degree_ordered(&g).0
}

/// Load one snapshot both ways: zero-copy mapped and heap-decoded.
fn both_backends(path: &std::path::Path) -> (CsrGraph, CsrGraph) {
    let mapped = map_snapshot(path).unwrap();
    let heap = load_snapshot(path).unwrap();
    assert_eq!(heap.backend(), StorageBackend::Heap);
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    assert_eq!(mapped.backend(), StorageBackend::Mapped);
    (mapped, heap)
}

#[test]
fn mapped_graph_is_structurally_identical() {
    let dir = tmpdir("struct");
    let g = sample_graph();
    let p = dir.join("g.v2");
    save_snapshot_v2(&g, &p).unwrap();
    let (mapped, heap) = both_backends(&p);

    assert_eq!(mapped, g);
    assert_eq!(heap, g);
    mapped.validate().unwrap();
    assert_eq!(mapped.num_vertices(), heap.num_vertices());
    assert_eq!(mapped.num_edges(), heap.num_edges());
    for v in 0..mapped.num_vertices() as u32 {
        assert_eq!(mapped.degree(v), heap.degree(v));
        assert_eq!(mapped.neighbors(v), heap.neighbors(v));
    }
    // The mapped view holds no owned CSR bytes; the heap twin holds all.
    #[cfg(all(target_os = "linux", target_endian = "little"))]
    assert_eq!(mapped.resident_bytes(), 0);
    assert_eq!(heap.resident_bytes(), heap.memory_bytes());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn counts_agree_across_catalog_threads_and_aux_cache() {
    let dir = tmpdir("counts");
    let g = sample_graph();
    let p = dir.join("g.v2");
    save_snapshot_v2(&g, &p).unwrap();
    let (mapped, heap) = both_backends(&p);

    for q in Query::ALL {
        let pattern = q.pattern();
        for aux in [true, false] {
            let cfg = EngineConfig::light().aux_cache(aux);
            // Serial engine on both backends.
            let serial_heap = light::core::run_query(&pattern, &heap, &cfg).matches;
            let serial_map = light::core::run_query(&pattern, &mapped, &cfg).matches;
            assert_eq!(
                serial_map,
                serial_heap,
                "{} serial aux={aux}: mmap vs heap",
                q.name()
            );
            // Parallel driver on the mapped graph must agree too.
            let par = run_query_parallel(&pattern, &mapped, &cfg, &ParallelConfig::new(3));
            assert!(par.failures.is_empty(), "{:?}", par.failures);
            assert_eq!(
                par.report.matches,
                serial_heap,
                "{} parallel aux={aux}: mmap vs heap",
                q.name()
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_sweep_yields_typed_errors_on_every_load_path() {
    let dir = tmpdir("trunc");
    let g = sample_graph();
    let p = dir.join("g.v2");
    save_snapshot_v2(&g, &p).unwrap();
    let bytes = std::fs::read(&p).unwrap();
    let len = bytes.len();

    // Cuts at every structural boundary: inside the header, at the header
    // edge, inside the offsets array, inside the neighbors array, and one
    // byte short of complete. (A cut inside the 8-byte magic makes the
    // file an unrecognizable blob that `open_any` correctly hands to the
    // edge-list parser, so the sweep starts past the magic.)
    let n = g.num_vertices();
    let offsets_mid = 4096 + (n + 1) * 4; // halfway through offsets
    let cuts = [9, 32, 63, 64, 4096, offsets_mid, len / 2, len - 1];
    for cut in cuts {
        let cut = cut.min(len - 1);
        let cp = dir.join(format!("cut{cut}.v2"));
        std::fs::write(&cp, &bytes[..cut]).unwrap();
        // Every load path reports a typed error; none may SIGBUS, panic,
        // or misparse the binary prefix as an edge list.
        let e1 = map_snapshot(&cp).unwrap_err().to_string();
        let e2 = load_snapshot(&cp).unwrap_err().to_string();
        let e3 = open_any(&cp, true).unwrap_err().to_string();
        for e in [&e1, &e2, &e3] {
            assert!(
                e.contains("truncated") || e.contains("snapshot"),
                "cut {cut}: unexpected error {e:?}"
            );
        }
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn v1_snapshots_fall_back_to_heap_everywhere() {
    let dir = tmpdir("v1");
    let g = sample_graph();
    let p = dir.join("g.v1");
    save_snapshot(&g, &p).unwrap();

    // map_snapshot on a v1 file silently decodes to the heap — old
    // artifacts keep working without a convert pass.
    let m = map_snapshot(&p).unwrap();
    assert_eq!(m.backend(), StorageBackend::Heap);
    assert_eq!(m, g);
    let (o, _) = open_any(&p, true).unwrap();
    assert_eq!(o.backend(), StorageBackend::Heap);
    assert_eq!(o, g);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mapped_graph_shares_storage_across_clones_and_threads() {
    let dir = tmpdir("clone");
    let g = sample_graph();
    let p = dir.join("g.v2");
    save_snapshot_v2(&g, &p).unwrap();
    let mapped = map_snapshot(&p).unwrap();

    // Clones of a mapped graph stay on the mapping (Arc bump, no copy)
    // and remain usable after the original is dropped and the file is
    // unlinked — the engine may hold clones with arbitrary lifetimes.
    let clone = mapped.clone();
    assert_eq!(clone.backend(), mapped.backend());
    drop(mapped);
    std::fs::remove_file(&p).unwrap();
    assert_eq!(clone, g);

    let shared = std::sync::Arc::new(clone);
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let s = std::sync::Arc::clone(&shared);
            std::thread::spawn(move || {
                let cfg = EngineConfig::light();
                light::core::run_query(&Query::P1.pattern(), &s, &cfg).matches
            })
        })
        .collect();
    let counts: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(counts.windows(2).all(|w| w[0] == w[1]));

    std::fs::remove_dir_all(&dir).ok();
}
