//! Observability must be observation-only: attaching a live metrics
//! recorder must never change what any engine variant enumerates, serial
//! or parallel — and the same property must hold when the `metrics`
//! feature is compiled out (where the recorder is a zero-sized no-op).
//!
//! This is the differential guard for the recording call sites threaded
//! through `do_comp`/`do_mat`, the setops dispatch layer, and the
//! scheduler: a recording bug that perturbs control flow (e.g. a sampling
//! branch that skips work) shows up here as a count mismatch.

use proptest::prelude::*;

use light::core::{EngineConfig, EngineVariant};
use light::graph::generators;
use light::metrics::Recorder;
use light::parallel::{run_query_parallel, ParallelConfig};
use light::pattern::Query;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn recorder_never_changes_serial_counts(
        n in 15usize..50,
        seed in 0u64..300,
    ) {
        let g = generators::barabasi_albert(n, 3, seed);
        for q in [Query::Triangle, Query::P1, Query::P2, Query::P4] {
            let p = q.pattern();
            for variant in EngineVariant::ALL {
                let bare = light::core::run_query(&p, &g, &EngineConfig::with_variant(variant));
                let rec = Recorder::new();
                let cfg = EngineConfig::with_variant(variant).metrics(rec.clone());
                let recorded = light::core::run_query(&p, &g, &cfg);
                prop_assert_eq!(
                    recorded.matches,
                    bare.matches,
                    "{} {}",
                    q.name(),
                    variant.name()
                );
                // The engine-level work statistics must be untouched too:
                // recording may not alter how the answer is computed.
                prop_assert_eq!(
                    recorded.stats.intersect.total,
                    bare.stats.intersect.total,
                    "{} {} intersections",
                    q.name(),
                    variant.name()
                );
                // And when compiled in, the recorder must have actually
                // seen the run (equal work, not skipped work).
                if light::metrics::ENABLED {
                    let sm = rec.summary();
                    prop_assert_eq!(
                        sm.tier_calls.iter().sum::<u64>(),
                        recorded.stats.intersect.total,
                        "{} {} recorder vs stats",
                        q.name(),
                        variant.name()
                    );
                }
            }
        }
    }

    #[test]
    fn recorder_never_changes_parallel_counts(
        n in 20usize..60,
        seed in 0u64..200,
        threads in 1usize..5,
    ) {
        let g = generators::barabasi_albert(n, 3, seed);
        for q in [Query::Triangle, Query::P2] {
            let p = q.pattern();
            let bare = run_query_parallel(
                &p,
                &g,
                &EngineConfig::light(),
                &ParallelConfig::new(threads),
            );
            let rec = Recorder::new();
            let cfg = EngineConfig::light().metrics(rec.clone());
            let recorded = run_query_parallel(&p, &g, &cfg, &ParallelConfig::new(threads));
            prop_assert_eq!(
                recorded.report.matches,
                bare.report.matches,
                "{} x{}",
                q.name(),
                threads
            );
            if light::metrics::ENABLED {
                prop_assert_eq!(rec.summary().workers.len(), threads, "{}", q.name());
            }
        }
    }
}
