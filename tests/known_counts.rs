//! Analytic match counts on structured graphs — closed-form ground truth
//! for every catalog pattern.

use light::core::{run_query, EngineConfig};
use light::graph::generators;
use light::pattern::Query;

fn count(q: Query, g: &light::graph::CsrGraph) -> u64 {
    run_query(&q.pattern(), g, &EngineConfig::light()).matches
}

/// Binomial coefficient.
fn choose(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let mut r = 1u64;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}

#[test]
fn triangles_in_complete_graphs() {
    for n in [3u64, 5, 8, 12, 20] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::Triangle, &g), choose(n, 3), "K{n}");
    }
}

#[test]
fn squares_in_complete_graphs() {
    // Each 4-subset of K_n contains 3 distinct 4-cycles.
    for n in [4u64, 6, 9] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::P1, &g), 3 * choose(n, 4), "K{n}");
    }
}

#[test]
fn diamonds_in_complete_graphs() {
    // Each 4-subset contains 6 diamonds (choose the non-adjacent pair).
    for n in [4u64, 6, 9] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::P2, &g), 6 * choose(n, 4), "K{n}");
    }
}

#[test]
fn cliques_in_complete_graphs() {
    for n in [4u64, 6, 9] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::P3, &g), choose(n, 4), "K{n} / P3");
    }
    for n in [5u64, 7, 10] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::P7, &g), choose(n, 5), "K{n} / P7");
    }
}

#[test]
fn houses_in_complete_graphs() {
    // P4 (house) has 2 automorphisms; injective 5-vertex placements per
    // 5-subset = 5! = 120, so 120/2 = 60 houses per subset.
    for n in [5u64, 7] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::P4, &g), 60 * choose(n, 5), "K{n}");
    }
}

#[test]
fn double_squares_in_complete_graphs() {
    // P5 has 4 automorphisms; 6!/4 = 180 embeddings per 6-subset.
    for n in [6u64, 8] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::P5, &g), 180 * choose(n, 6), "K{n}");
    }
}

#[test]
fn p6_in_complete_graphs() {
    // P6 has 4 automorphisms (swap u0/u1, swap u2/u3); 5!/4 = 30 per
    // 5-subset.
    for n in [5u64, 7] {
        let g = generators::complete(n as usize);
        assert_eq!(count(Query::P6, &g), 30 * choose(n, 5), "K{n}");
    }
}

#[test]
fn squares_in_grids() {
    // rows x cols grid: unit squares only.
    for (r, c) in [(2usize, 2usize), (3, 4), (5, 5)] {
        let g = generators::grid(r, c);
        assert_eq!(
            count(Query::P1, &g),
            ((r - 1) * (c - 1)) as u64,
            "grid {r}x{c}"
        );
    }
}

#[test]
fn no_triangles_in_bipartite_structures() {
    for g in [
        generators::grid(4, 4),
        generators::cycle(8),
        generators::star(9),
    ] {
        assert_eq!(count(Query::Triangle, &g), 0);
        assert_eq!(count(Query::P2, &g), 0); // diamond contains a triangle
        assert_eq!(count(Query::P3, &g), 0);
    }
}

#[test]
fn squares_in_even_cycles() {
    // C4 is exactly one square; longer cycles contain no 4-cycles.
    assert_eq!(count(Query::P1, &generators::cycle(4)), 1);
    assert_eq!(count(Query::P1, &generators::cycle(6)), 0);
    assert_eq!(count(Query::P1, &generators::cycle(8)), 0);
}

#[test]
fn triangle_count_matches_substrate() {
    // The engine agrees with the CSR-level triangle counter on every
    // simulated dataset at test scale.
    for d in light::graph::datasets::Dataset::ALL {
        let g = d.build_scaled(0.03);
        assert_eq!(
            count(Query::Triangle, &g),
            light::graph::stats::count_triangles(&g),
            "{}",
            d.name()
        );
    }
}

#[test]
fn agm_bound_worst_case() {
    // Example II.1/III.1: the diamond on a complete graph of sqrt(M)
    // vertices produces Θ(M²) results; verify the count formula holds and
    // the engine completes comfortably at this scale.
    let n = 24usize; // M = 276, output ~ 6 * C(24,4)
    let g = generators::complete(n);
    let expected = 6 * choose(n as u64, 4);
    assert_eq!(count(Query::P2, &g), expected);
}
