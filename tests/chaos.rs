//! Deterministic chaos harness: drive the enumeration runtime through
//! every registered failpoint site and check the fault-tolerance
//! contract of DESIGN.md §8 — no hang, no lost accounting, and partial
//! counts that are exact over the surviving subtrees.
//!
//! Requires the `failpoint` feature (`cargo test --features failpoint
//! --test chaos`); CI runs the matrix with metrics both on and off,
//! since the unwind path crosses the metrics shard-flush code.
//!
//! Every test runs the workload on a watchdog thread: a hang is reported
//! as a test failure within [`WATCHDOG`], not a CI timeout. Panic-hook
//! noise from *injected* panics is filtered; real assertion failures
//! still print.

#![cfg(feature = "failpoint")]

use std::sync::mpsc::{self, RecvTimeoutError};
use std::time::Duration;

use light::core::{run_query, Outcome};
use light::failpoint;
use light::graph::generators;
use light::parallel::ParallelReport;
use light::prelude::*;

const WATCHDOG: Duration = Duration::from_secs(60);

/// Every site the runtime registers, with the crate layer it lives in.
/// `docs/failpoints.md` documents each; the chaos matrix must cover all.
const SITES: &[&str] = &[
    "scheduler::steal",
    "scheduler::donate",
    "engine::comp",
    "engine::mat",
    "engine::intersect",
    "pool::acquire",
];

/// Silence panic-hook output for injected panics (payloads carry the
/// `failpoint <site> triggered` marker); everything else still prints.
fn quiet_injected_panics() {
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("failpoint"));
        if !injected {
            saved(info);
        }
    }));
}

/// Run `f` on a watchdog thread; a case that neither finishes nor panics
/// within [`WATCHDOG`] is a deadlock regression.
fn watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let h = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            h.join().expect("worker sent a value, join cannot fail");
            v
        }
        Err(RecvTimeoutError::Disconnected) => match h.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without panicking"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("chaos case {name:?} hung past the {WATCHDOG:?} watchdog")
        }
    }
}

fn test_graph() -> CsrGraph {
    generators::barabasi_albert(300, 4, 9)
}

fn golden() -> u64 {
    let g = test_graph();
    run_query(&Query::P2.pattern(), &g, &EngineConfig::light()).matches
}

/// Arm `site` with `spec`, run P2 on the test graph with 4 workers, and
/// disarm. The `FailScenario` guard is held by the caller.
fn parallel_case(site: &'static str, spec: &'static str) -> ParallelReport {
    watchdog(site, move || {
        let g = test_graph();
        failpoint::configure(site, spec).unwrap();
        let pr = run_query_parallel(
            &Query::P2.pattern(),
            &g,
            &EngineConfig::light(),
            &ParallelConfig::new(4),
        );
        failpoint::remove(site);
        pr
    })
}

/// The full contract a chaos run must satisfy regardless of which site
/// fired: termination (implied by returning), conserved subtree
/// accounting, one typed failure per abandoned subtree, the ticket
/// invariant, and a count that never exceeds (and without failures,
/// equals) the golden count.
fn assert_chaos_contract(site: &str, pr: &ParallelReport, golden: u64, n: u64) {
    assert_eq!(pr.report.outcome, Outcome::Complete, "{site}");
    let part = pr.partial_result();
    assert_eq!(
        part.completed_subtrees + part.failed_subtrees,
        n,
        "{site}: subtree accounting must be conserved"
    );
    assert_eq!(
        part.failed_subtrees,
        pr.failures.len() as u64,
        "{site}: one typed failure per abandoned subtree"
    );
    let donations: u64 = pr.workers.iter().map(|w| w.donations).sum();
    let tickets: u64 = pr.workers.iter().map(|w| w.tickets).sum();
    assert!(
        donations <= tickets,
        "{site}: ticket invariant broken ({donations} donations > {tickets} tickets)"
    );
    assert!(
        part.count <= golden,
        "{site}: partial count {} exceeds golden {golden}",
        part.count
    );
    if pr.failures.is_empty() {
        assert_eq!(part.count, golden, "{site}: unfailed run must be exact");
    }
    for f in &pr.failures {
        let msg = f.to_string();
        assert!(msg.contains("panicked"), "{site}: odd failure {msg:?}");
    }
}

#[test]
fn unarmed_scenario_is_count_neutral() {
    let _s = failpoint::FailScenario::setup();
    let expect = golden();
    let pr = watchdog("unarmed", move || {
        let g = test_graph();
        run_query_parallel(
            &Query::P2.pattern(),
            &g,
            &EngineConfig::light(),
            &ParallelConfig::new(4),
        )
    });
    assert!(pr.is_complete());
    assert_eq!(pr.report.matches, expect);
    let part = pr.partial_result();
    assert_eq!(part.completed_subtrees, 300);
    assert_eq!(part.failed_subtrees, 0);
}

#[test]
fn panic_matrix_every_site_parallel() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    let expect = golden();
    for site in SITES {
        let pr = parallel_case(site, "panic");
        assert_chaos_contract(site, &pr, expect, 300);
    }
}

#[test]
fn probabilistic_panics_conserve_accounting() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    let expect = golden();
    // Seeded probability: every run of this test injects the same faults.
    let pr = parallel_case("engine::comp", "0.3@7:panic");
    assert_chaos_contract("engine::comp@p=0.3", &pr, expect, 300);
    let part = pr.partial_result();
    assert!(
        part.failed_subtrees > 0,
        "p=0.3 over thousands of COMPs cannot miss every root"
    );
    assert!(
        part.completed_subtrees > 0,
        "p=0.3 cannot poison every root"
    );
}

#[test]
fn delay_injection_preserves_exact_counts() {
    let _s = failpoint::FailScenario::setup();
    let expect = golden();
    // Slowing every steal attempt shifts interleavings but must not
    // change the answer or the accounting.
    let pr = parallel_case("scheduler::steal", "delay(1)");
    assert!(pr.is_complete(), "delay is not a fault");
    assert_eq!(pr.report.matches, expect);
}

#[test]
fn serial_panic_propagates_to_caller() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    // Containment is a property of the parallel scheduler; the serial
    // engine deliberately lets panics unwind to the caller.
    let g = test_graph();
    failpoint::configure("engine::comp", "panic").unwrap();
    let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_query(&Query::P2.pattern(), &g, &EngineConfig::light())
    }));
    failpoint::remove("engine::comp");
    assert!(res.is_err(), "serial run must propagate the injected panic");
}

#[test]
fn injected_io_error_is_typed_not_a_panic() {
    let _s = failpoint::FailScenario::setup();
    failpoint::configure("io::read_edge_list", "return(disk on fire)").unwrap();
    let err = light::graph::io::read_edge_list("0 1\n".as_bytes()).unwrap_err();
    failpoint::remove("io::read_edge_list");
    let msg = err.to_string();
    assert!(
        msg.contains("disk on fire"),
        "expected injected message, got {msg:?}"
    );
    // And once disarmed the same input loads.
    assert!(light::graph::io::read_edge_list("0 1\n".as_bytes()).is_ok());
}
