//! Differential test for the resident query service: the daemon must
//! return exactly the counts the one-shot engine computes, for every
//! pattern in the query catalog, under concurrent socket clients, with
//! the plan cache warm and cold — and then drain cleanly.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use light::core::{run_query, EngineConfig};
use light::pattern::Query;
use light::serve::json::Json;
use light::serve::{drain, GraphCatalog, QueryService, ServeConfig, SocketServer};

/// Every named pattern the CLI accepts.
const PATTERNS: &[Query] = &[
    Query::Triangle,
    Query::P1,
    Query::P2,
    Query::P3,
    Query::P4,
    Query::P5,
    Query::P6,
    Query::P7,
];

fn test_graph() -> light::graph::CsrGraph {
    light::graph::generators::barabasi_albert(400, 3, 2024)
}

fn service() -> Arc<QueryService> {
    let mut catalog = GraphCatalog::new();
    catalog.insert("g", test_graph()).unwrap();
    Arc::new(QueryService::new(
        catalog,
        ServeConfig {
            max_concurrent: 4,
            queue_depth: 16,
            threads_per_query: 2,
            default_timeout: Some(Duration::from_secs(60)),
            drain_grace: Duration::from_secs(10),
            idle_timeout: Some(Duration::from_secs(30)),
            mem_watermark: None,
            flat_topology: false,
            // Production defaults: the differential also exercises the
            // batched path when concurrent clients land in one window.
            batch_window: Some(Duration::from_millis(2)),
            shared_aux: true,
            compact_threshold: Some(32_768),
            engine: EngineConfig::light(),
        },
    ))
}

/// The ground truth: one-shot engine counts on the same (degree-ordered)
/// graph the catalog serves.
fn expected_counts(svc: &QueryService) -> Vec<(&'static str, u64)> {
    let g = svc.catalog().get("g").unwrap().graph();
    PATTERNS
        .iter()
        .map(|q| {
            (
                q.name(),
                run_query(&q.pattern(), &g, &EngineConfig::light()).matches,
            )
        })
        .collect()
}

fn connect(path: &std::path::Path) -> (impl Write, BufReader<UnixStream>) {
    // The accept loop needs a beat to come up; retry briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => {
                let r = BufReader::new(s.try_clone().expect("clone stream"));
                return (s, r);
            }
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("cannot connect to {}: {e}", path.display()),
        }
    }
}

fn roundtrip(w: &mut impl Write, r: &mut impl BufRead, req: &str) -> Json {
    writeln!(w, "{req}").expect("send");
    w.flush().expect("flush");
    let mut line = String::new();
    r.read_line(&mut line).expect("recv");
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

#[test]
fn daemon_counts_match_one_shot_engine_under_concurrency() {
    let svc = service();
    let expect = expected_counts(&svc);
    let sock = std::env::temp_dir().join(format!("light_serve_diff_{}.sock", std::process::id()));
    let server = SocketServer::bind(Arc::clone(&svc), &sock).expect("bind");

    // Cold pass: every pattern once over one connection (all plan misses,
    // since the cache starts empty), counts must match the ground truth.
    {
        let (mut w, mut r) = connect(&sock);
        for (name, matches) in &expect {
            let resp = roundtrip(
                &mut w,
                &mut r,
                &format!("{{\"op\":\"query\",\"pattern\":\"{name}\",\"id\":\"cold-{name}\"}}"),
            );
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "{resp:?}"
            );
            assert_eq!(
                resp.get("matches").and_then(Json::as_u64),
                Some(*matches),
                "cold {name}"
            );
            assert_eq!(
                resp.get("plan_cache").and_then(Json::as_str),
                Some("miss"),
                "cold {name} must be a plan miss"
            );
        }
    }

    // Warm pass: 8 concurrent clients, each over its own connection,
    // querying every pattern. All plans are now cached; every count must
    // still match.
    let mut clients = Vec::new();
    for c in 0..8 {
        let sock = sock.clone();
        let expect = expect.clone();
        clients.push(std::thread::spawn(move || {
            let (mut w, mut r) = connect(&sock);
            for (name, matches) in &expect {
                let resp = roundtrip(
                    &mut w,
                    &mut r,
                    &format!("{{\"op\":\"query\",\"pattern\":\"{name}\",\"graph\":\"g\",\"id\":\"c{c}-{name}\"}}"),
                );
                assert_eq!(
                    resp.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "client {c} {name}: {resp:?}"
                );
                assert_eq!(
                    resp.get("matches").and_then(Json::as_u64),
                    Some(*matches),
                    "client {c} warm {name}"
                );
                assert_eq!(
                    resp.get("plan_cache").and_then(Json::as_str),
                    Some("hit"),
                    "client {c} warm {name} must be a plan hit"
                );
                assert_eq!(
                    resp.get("id").and_then(Json::as_str),
                    Some(format!("c{c}-{name}").as_str()),
                    "id must echo verbatim"
                );
            }
        }));
    }
    for cl in clients {
        cl.join().expect("client thread");
    }

    // The measured plan-cache hit rate is the acceptance criterion: 8
    // clients × |PATTERNS| hits over |PATTERNS| misses.
    assert!(
        svc.plan_cache().hit_rate() > 0.8,
        "{}",
        svc.plan_cache().hit_rate()
    );
    assert_eq!(svc.plan_cache().misses(), PATTERNS.len() as u64);
    assert_eq!(svc.plan_cache().hits(), 8 * PATTERNS.len() as u64);

    // Service-side stats agree with what the clients saw.
    {
        let (mut w, mut r) = connect(&sock);
        let stats = roundtrip(&mut w, &mut r, "{\"op\":\"stats\",\"id\":\"s\"}");
        let q = stats.get("queries").expect("queries object");
        assert_eq!(
            q.get("total").and_then(Json::as_u64),
            Some(9 * PATTERNS.len() as u64)
        );
        assert_eq!(
            q.get("ok").and_then(Json::as_u64),
            Some(9 * PATTERNS.len() as u64)
        );
        assert_eq!(q.get("error").and_then(Json::as_u64), Some(0));
        assert_eq!(q.get("overloaded").and_then(Json::as_u64), Some(0));
        let pc = stats.get("plan_cache").expect("plan_cache object");
        assert!(pc.get("hit_rate").and_then(Json::as_f64).unwrap() > 0.8);

        // Shutdown over the wire: ack, then new queries are refused.
        let ack = roundtrip(&mut w, &mut r, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
        assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));
    }

    assert!(svc.is_draining());
    let report = drain(&svc);
    assert_eq!(report.cancelled, 0, "idle drain must cancel nothing");
    server.join().expect("server join");
    assert!(!sock.exists(), "socket file must be removed on drain");

    // Post-drain, new queries get the typed draining error via handle_line.
    let resp = svc.handle_line("{\"op\":\"query\",\"pattern\":\"triangle\"}");
    let doc = Json::parse(&resp).unwrap();
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("draining"));
}
