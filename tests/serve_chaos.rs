//! Chaos harness for the serve tier: drive a live in-process daemon
//! through every `serve::*` failpoint site under concurrent clients and
//! check the resilience contract of DESIGN.md §15 — the conservation
//! law (every submitted request gets exactly one typed terminal
//! response, then EOF), `panics_total` accounting that matches the
//! injected faults, service state that provably survives supervision
//! (post-fault queries return exact counts), and a clean drain after
//! every scenario.
//!
//! Failpoints arm programmatically, so the daemons here run in-process
//! over temp Unix sockets: the portable thread-per-connection transport
//! everywhere, plus the epoll reactor (and its executor/reactor-side
//! sites `serve::dispatch`, `serve::reactor_read`, `serve::reactor_write`)
//! on Linux. Requires the `failpoint` feature:
//! `cargo test --features failpoint --test serve_chaos`.

#![cfg(feature = "failpoint")]

use std::io::{Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

use light::core::{run_query, EngineConfig};
use light::failpoint;
use light::pattern::Query;
use light::serve::json::Json;
use light::serve::{drain, GraphCatalog, QueryService, ServeConfig, SocketServer};

const WATCHDOG: Duration = Duration::from_secs(120);
const CLIENTS: usize = 8;

/// The service-layer sites: visited by `QueryService::execute` on every
/// query, over both transports. `docs/failpoints.md` documents each.
const SERVICE_SITES: &[&str] = &[
    "serve::catalog_resolve",
    "serve::admission",
    "serve::plan_build",
];

/// Patterns the chaos clients cycle through (plan-cache pressure needs
/// more than one).
const PATTERNS: &[Query] = &[Query::Triangle, Query::P1, Query::P2, Query::P3];

fn quiet_injected_panics() {
    let saved = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|s| s.contains("failpoint"));
        if !injected {
            saved(info);
        }
    }));
}

fn watchdog<T: Send + 'static>(name: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let h = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(v) => {
            h.join().expect("worker sent a value, join cannot fail");
            v
        }
        Err(RecvTimeoutError::Disconnected) => match h.join() {
            Err(payload) => std::panic::resume_unwind(payload),
            Ok(()) => unreachable!("sender dropped without panicking"),
        },
        Err(RecvTimeoutError::Timeout) => {
            panic!("chaos case {name:?} hung past the {WATCHDOG:?} watchdog")
        }
    }
}

fn service() -> Arc<QueryService> {
    let mut catalog = GraphCatalog::new();
    catalog
        .insert("g", light::graph::generators::barabasi_albert(300, 3, 9))
        .unwrap();
    Arc::new(QueryService::new(
        catalog,
        ServeConfig {
            max_concurrent: 4,
            queue_depth: 16,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(60)),
            drain_grace: Duration::from_secs(10),
            idle_timeout: Some(Duration::from_secs(30)),
            mem_watermark: None,
            flat_topology: false,
            // Legacy legs pin the gate off so their fault accounting
            // stays per-query; the batch leg below turns it on.
            batch_window: None,
            shared_aux: false,
            compact_threshold: Some(32_768),
            engine: EngineConfig::light(),
        },
    ))
}

/// A daemon with the multi-query gate on: a wide window so concurrent
/// chaos clients reliably coalesce into shared passes.
fn batched_service() -> Arc<QueryService> {
    let mut catalog = GraphCatalog::new();
    catalog
        .insert("g", light::graph::generators::barabasi_albert(300, 3, 9))
        .unwrap();
    Arc::new(QueryService::new(
        catalog,
        ServeConfig {
            max_concurrent: CLIENTS,
            queue_depth: 16,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(60)),
            drain_grace: Duration::from_secs(10),
            idle_timeout: Some(Duration::from_secs(30)),
            mem_watermark: None,
            flat_topology: false,
            batch_window: Some(Duration::from_millis(30)),
            shared_aux: true,
            compact_threshold: Some(32_768),
            engine: EngineConfig::light(),
        },
    ))
}

fn expected_counts(svc: &QueryService) -> Vec<(&'static str, u64)> {
    let g = svc.catalog().get("g").unwrap().graph();
    PATTERNS
        .iter()
        .map(|q| {
            (
                q.name(),
                run_query(&q.pattern(), &g, &EngineConfig::light()).matches,
            )
        })
        .collect()
}

enum Server {
    Threads(SocketServer),
    #[cfg(target_os = "linux")]
    Reactor(light::serve::ReactorServer),
}

impl Server {
    fn bind(kind: &str, svc: Arc<QueryService>, path: &Path) -> Server {
        match kind {
            "threads" => Server::Threads(SocketServer::bind(svc, path).expect("bind threads")),
            #[cfg(target_os = "linux")]
            "reactor" => {
                Server::Reactor(light::serve::ReactorServer::bind(svc, path).expect("bind reactor"))
            }
            other => panic!("unknown transport {other:?}"),
        }
    }

    fn join(self) -> std::io::Result<()> {
        match self {
            Server::Threads(s) => s.join(),
            #[cfg(target_os = "linux")]
            Server::Reactor(s) => s.join(),
        }
    }
}

fn transports() -> &'static [&'static str] {
    #[cfg(target_os = "linux")]
    {
        &["threads", "reactor"]
    }
    #[cfg(not(target_os = "linux"))]
    {
        &["threads"]
    }
}

fn sock_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("light_chaos_{tag}_{}.sock", std::process::id()))
}

fn connect(path: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => panic!("cannot connect to {}: {e}", path.display()),
        }
    }
}

/// Read one `\n`-terminated line; `None` on EOF. Panics on I/O error —
/// chaos legs that expect dead connections use [`try_read_line`].
fn read_line(s: &mut UnixStream) -> Option<String> {
    try_read_line(s).unwrap_or_else(|e| panic!("read error: {e}"))
}

fn try_read_line(s: &mut UnixStream) -> std::io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match s.read(&mut byte)? {
            0 => {
                return Ok(if buf.is_empty() {
                    None
                } else {
                    Some(String::from_utf8_lossy(&buf).into_owned())
                })
            }
            _ if byte[0] == b'\n' => return Ok(Some(String::from_utf8_lossy(&buf).into_owned())),
            _ => buf.push(byte[0]),
        }
    }
}

fn roundtrip(s: &mut UnixStream, req: &str) -> Json {
    writeln!(s, "{req}").expect("send");
    s.flush().expect("flush");
    let line = read_line(s).unwrap_or_else(|| panic!("EOF instead of a response to {req}"));
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

/// Fetch `panics_total` over the wire, the way an operator would.
fn panics_total(path: &Path) -> u64 {
    let mut s = connect(path);
    let stats = roundtrip(&mut s, "{\"op\":\"stats\",\"id\":\"pt\"}");
    stats
        .get("queries")
        .and_then(|q| q.get("panics_total"))
        .and_then(Json::as_u64)
        .expect("stats carries panics_total")
}

/// Shut the daemon down over the wire and drain it; every scenario must
/// end this way, cleanly, whatever was injected beforehand.
fn shutdown_and_drain(svc: &Arc<QueryService>, server: Server, path: &Path) {
    let mut s = connect(path);
    let ack = roundtrip(&mut s, "{\"op\":\"shutdown\",\"id\":\"bye\"}");
    assert_eq!(
        ack.get("draining").and_then(Json::as_bool),
        Some(true),
        "{ack:?}"
    );
    drop(s);
    let _report = drain(svc);
    server
        .join()
        .expect("daemon must drain cleanly after chaos");
    assert!(!path.exists(), "socket file removed on drain");
}

/// The conservation pass: `CLIENTS` concurrent clients, each sending
/// `per_client` queries with unique ids, each request answered by
/// exactly one syntactically valid response echoing its id, then EOF
/// after drain. Returns every (request id, response) pair.
fn client_matrix(path: &Path, per_client: usize) -> Vec<(String, Json)> {
    let mut handles = Vec::new();
    for c in 0..CLIENTS {
        let path = path.to_path_buf();
        handles.push(std::thread::spawn(move || {
            let mut s = connect(&path);
            let mut out = Vec::new();
            for i in 0..per_client {
                let pat = PATTERNS[(c + i) % PATTERNS.len()].name();
                let id = format!("c{c}-q{i}");
                let resp = roundtrip(
                    &mut s,
                    &format!("{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"{id}\"}}"),
                );
                assert_eq!(
                    resp.get("id").and_then(Json::as_str),
                    Some(id.as_str()),
                    "response must echo the request id: {resp:?}"
                );
                out.push((id, resp));
            }
            out
        }));
    }
    handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect()
}

/// Terminal statuses a query may resolve to. Anything else (or a second
/// line for the same id, or a missing line — both caught structurally by
/// the lock-step `roundtrip`) violates the conservation law.
fn assert_terminal(resp: &Json) {
    let status = resp
        .get("status")
        .and_then(Json::as_str)
        .expect("status field");
    assert!(
        matches!(status, "ok" | "error" | "partial" | "overloaded"),
        "non-terminal status: {resp:?}"
    );
}

/// Every service-layer site, armed to panic on every visit: all queries
/// come back as typed `internal_error` responses (never a hang, never a
/// dropped connection), `panics_total` matches exactly, and after
/// disarming the daemon serves exact counts — catalog, plan cache, and
/// admission state all survived the unwinds.
#[test]
fn service_site_panics_are_contained_and_accounted() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    for kind in transports() {
        for site in SERVICE_SITES {
            let (kind, site) = (*kind, *site);
            watchdog(&format!("{site}/{kind}"), move || {
                let svc = service();
                let expect = expected_counts(&svc);
                let path = sock_path(&format!("svc_{kind}"));
                let server = Server::bind(kind, Arc::clone(&svc), &path);

                failpoint::configure(site, "panic").unwrap();
                let per_client = 4;
                let responses = client_matrix(&path, per_client);
                assert_eq!(
                    responses.len(),
                    CLIENTS * per_client,
                    "conservation: one response per request"
                );
                for (id, resp) in &responses {
                    assert_terminal(resp);
                    assert_eq!(
                        resp.get("code").and_then(Json::as_str),
                        Some("internal_error"),
                        "{site}/{kind} {id}: armed panic must surface as internal_error: {resp:?}"
                    );
                    assert!(
                        resp.get("error")
                            .and_then(Json::as_str)
                            .is_some_and(|e| e.contains("contained")),
                        "{site}/{kind}: message must say the panic was contained: {resp:?}"
                    );
                }
                failpoint::remove(site);

                assert_eq!(
                    panics_total(&path),
                    (CLIENTS * per_client) as u64,
                    "{site}/{kind}: panics_total must count every injected panic"
                );

                // Supervision must leave the service usable: exact counts
                // after the storm, from the same catalog and plan cache.
                let mut s = connect(&path);
                for (pat, matches) in &expect {
                    let resp = roundtrip(
                        &mut s,
                        &format!(
                            "{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"after-{pat}\"}}"
                        ),
                    );
                    assert_eq!(
                        resp.get("status").and_then(Json::as_str),
                        Some("ok"),
                        "{resp:?}"
                    );
                    assert_eq!(
                        resp.get("matches").and_then(Json::as_u64),
                        Some(*matches),
                        "{site}/{kind}: post-fault count for {pat} must be exact"
                    );
                }
                let health = roundtrip(&mut s, "{\"op\":\"health\",\"id\":\"h\"}");
                assert_eq!(
                    health.get("ready").and_then(Json::as_bool),
                    Some(true),
                    "{health:?}"
                );
                drop(s);
                shutdown_and_drain(&svc, server, &path);
            });
        }
    }
}

/// Seeded probabilistic panics at the resolve site: a mixed stream of
/// exact counts and typed internal errors, with `panics_total` equal to
/// the number of error responses the clients actually saw.
#[test]
fn probabilistic_panics_mix_exact_counts_with_typed_errors() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("prob/{kind}"), move || {
            let svc = service();
            let expect = expected_counts(&svc);
            let path = sock_path(&format!("prob_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            failpoint::configure("serve::catalog_resolve", "0.35@11:panic").unwrap();
            let per_client = 6;
            let responses = client_matrix(&path, per_client);
            failpoint::remove("serve::catalog_resolve");
            assert_eq!(responses.len(), CLIENTS * per_client);

            let mut panicked = 0u64;
            let mut ok = 0u64;
            for (id, resp) in &responses {
                assert_terminal(resp);
                match resp.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        // c{c}-q{i} → pattern (c + i) % len, same cycle the
                        // clients used; its count must be exact.
                        let (c, i) = id[1..].split_once("-q").expect("id shape");
                        let idx = (c.parse::<usize>().unwrap() + i.parse::<usize>().unwrap())
                            % PATTERNS.len();
                        assert_eq!(
                            resp.get("matches").and_then(Json::as_u64),
                            Some(expect[idx].1),
                            "{kind} {id}: surviving query must return the exact count"
                        );
                        ok += 1;
                    }
                    Some("error") => {
                        assert_eq!(
                            resp.get("code").and_then(Json::as_str),
                            Some("internal_error"),
                            "{resp:?}"
                        );
                        panicked += 1;
                    }
                    other => panic!("{kind} {id}: unexpected status {other:?}"),
                }
            }
            assert!(
                panicked > 0,
                "{kind}: p=0.35 over 48 queries cannot miss every one"
            );
            assert!(ok > 0, "{kind}: p=0.35 cannot kill every query");
            assert_eq!(
                panics_total(&path),
                panicked,
                "{kind}: panics_total must equal the internal errors clients saw"
            );
            shutdown_and_drain(&svc, server, &path);
        });
    }
}

/// Delay injection at the admission site is not a fault: every query
/// still returns its exact count, and the drain stays clean.
#[test]
fn admission_delays_do_not_change_any_answer() {
    let _s = failpoint::FailScenario::setup();
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("delay/{kind}"), move || {
            let svc = service();
            let expect = expected_counts(&svc);
            let path = sock_path(&format!("delay_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            failpoint::configure("serve::admission", "delay(25)").unwrap();
            let per_client = 3;
            let responses = client_matrix(&path, per_client);
            failpoint::remove("serve::admission");
            assert_eq!(responses.len(), CLIENTS * per_client);
            for (id, resp) in &responses {
                let (c, i) = id[1..].split_once("-q").expect("id shape");
                let idx =
                    (c.parse::<usize>().unwrap() + i.parse::<usize>().unwrap()) % PATTERNS.len();
                assert_eq!(
                    resp.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "{resp:?}"
                );
                assert_eq!(
                    resp.get("matches").and_then(Json::as_u64),
                    Some(expect[idx].1),
                    "{kind} {id}: delay must not change the count"
                );
            }
            assert_eq!(panics_total(&path), 0);
            shutdown_and_drain(&svc, server, &path);
        });
    }
}

/// The no-fault differential leg: a `FailScenario` armed with nothing
/// must be observationally identical to a plain daemon — every count
/// equal to the one-shot engine, zero panics, clean drain.
#[test]
fn unarmed_scenario_matches_one_shot_counts() {
    let _s = failpoint::FailScenario::setup();
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("unarmed/{kind}"), move || {
            let svc = service();
            let expect = expected_counts(&svc);
            let path = sock_path(&format!("unarmed_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            let per_client = PATTERNS.len();
            let responses = client_matrix(&path, per_client);
            assert_eq!(responses.len(), CLIENTS * per_client);
            for (id, resp) in &responses {
                let (c, i) = id[1..].split_once("-q").expect("id shape");
                let idx =
                    (c.parse::<usize>().unwrap() + i.parse::<usize>().unwrap()) % PATTERNS.len();
                assert_eq!(
                    resp.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "{resp:?}"
                );
                assert_eq!(
                    resp.get("matches").and_then(Json::as_u64),
                    Some(expect[idx].1),
                    "{kind} {id}: no-fault counts must match run_query exactly"
                );
            }
            assert_eq!(panics_total(&path), 0);
            shutdown_and_drain(&svc, server, &path);
        });
    }
}

/// Batch containment: a panic injected inside one member's slot of a
/// live shared pass (`serve::batch_member`) must surface as a typed
/// `internal_error` for that member alone — sibling members of the same
/// batch still answer with exact counts, the conservation law holds
/// (one terminal response per request), `panics_total` equals the
/// internal errors clients saw, batches demonstrably formed, and the
/// daemon drains clean.
#[test]
fn batch_member_panics_are_typed_and_do_not_perturb_siblings() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("batch/{kind}"), move || {
            let svc = batched_service();
            let expect = expected_counts(&svc);
            let path = sock_path(&format!("batch_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            failpoint::configure("serve::batch_member", "0.3@5:panic").unwrap();
            let per_client = 6;
            let responses = client_matrix(&path, per_client);
            failpoint::remove("serve::batch_member");
            assert_eq!(
                responses.len(),
                CLIENTS * per_client,
                "conservation: one response per request"
            );

            let mut panicked = 0u64;
            let mut ok = 0u64;
            for (id, resp) in &responses {
                assert_terminal(resp);
                match resp.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        let (c, i) = id[1..].split_once("-q").expect("id shape");
                        let idx = (c.parse::<usize>().unwrap() + i.parse::<usize>().unwrap())
                            % PATTERNS.len();
                        assert_eq!(
                            resp.get("matches").and_then(Json::as_u64),
                            Some(expect[idx].1),
                            "{kind} {id}: a member that survives its batch must \
                             return the exact count even when a sibling panicked"
                        );
                        ok += 1;
                    }
                    Some("error") => {
                        assert_eq!(
                            resp.get("code").and_then(Json::as_str),
                            Some("internal_error"),
                            "{resp:?}"
                        );
                        panicked += 1;
                    }
                    other => panic!("{kind} {id}: unexpected status {other:?}"),
                }
            }
            assert!(ok > 0, "{kind}: p=0.3 cannot kill every batch member");
            assert!(
                panicked > 0,
                "{kind}: with batches forming, p=0.3 must hit at least one member"
            );
            assert_eq!(
                panics_total(&path),
                panicked,
                "{kind}: panics_total must equal the internal errors clients saw"
            );

            // The fault only fires inside batch assembly, so hits prove
            // shared passes actually formed; the stats section must agree.
            let mut s = connect(&path);
            let stats = roundtrip(&mut s, "{\"op\":\"stats\",\"id\":\"mq\"}");
            let mq = stats.get("multiquery").expect("multiquery stats section");
            assert_eq!(mq.get("enabled").and_then(Json::as_bool), Some(true));
            assert!(
                mq.get("batches").and_then(Json::as_u64).unwrap_or(0) > 0,
                "batches must have formed: {stats:?}"
            );

            // Post-fault: exact counts, the gate and shared aux store
            // survived the contained member panics.
            for (pat, matches) in &expect {
                let resp = roundtrip(
                    &mut s,
                    &format!("{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"after-{pat}\"}}"),
                );
                assert_eq!(
                    resp.get("matches").and_then(Json::as_u64),
                    Some(*matches),
                    "{kind}: post-fault count for {pat} must be exact: {resp:?}"
                );
            }
            drop(s);
            shutdown_and_drain(&svc, server, &path);
        });
    }
}

/// Executor-side containment on the reactor transport: a panic injected
/// at dispatch (before the service ever sees the line) still produces
/// exactly one `internal_error` per request, with the id recovered from
/// the raw line and the executor stage attached, and the pool survives.
#[cfg(target_os = "linux")]
#[test]
fn reactor_dispatch_panics_are_contained_per_request() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    watchdog("dispatch/reactor", move || {
        let svc = service();
        let expect = expected_counts(&svc);
        let path = sock_path("dispatch");
        let server = Server::bind("reactor", Arc::clone(&svc), &path);

        failpoint::configure("serve::dispatch", "panic").unwrap();
        let per_client = 4;
        let responses = client_matrix(&path, per_client);
        failpoint::remove("serve::dispatch");

        assert_eq!(responses.len(), CLIENTS * per_client);
        for (id, resp) in &responses {
            assert_eq!(
                resp.get("code").and_then(Json::as_str),
                Some("internal_error"),
                "dispatch {id}: {resp:?}"
            );
            assert_eq!(
                resp.get("stage").and_then(Json::as_str),
                Some("executor"),
                "dispatch panics must carry the executor stage: {resp:?}"
            );
        }
        assert_eq!(panics_total(&path), (CLIENTS * per_client) as u64);

        // The executor pool is intact: exact counts once disarmed.
        let mut s = connect(&path);
        for (pat, matches) in &expect {
            let resp = roundtrip(
                &mut s,
                &format!("{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"after-{pat}\"}}"),
            );
            assert_eq!(
                resp.get("matches").and_then(Json::as_u64),
                Some(*matches),
                "{resp:?}"
            );
        }
        drop(s);
        shutdown_and_drain(&svc, server, &path);
    });
}

/// Reactor I/O chaos: probabilistic panics in the read/write paths kill
/// individual connections (that is the contract — a poisoned conn is
/// abandoned, never a poisoned reactor), while the daemon itself stays
/// up, keeps serving fresh connections, and drains clean.
#[cfg(target_os = "linux")]
#[test]
fn reactor_io_panics_kill_connections_not_the_daemon() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    watchdog("reactor_io", move || {
        let svc = service();
        let expect = expected_counts(&svc);
        let path = sock_path("rio");
        let server = Server::bind("reactor", Arc::clone(&svc), &path);

        failpoint::configure("serve::reactor_read", "0.2@7:panic").unwrap();
        failpoint::configure("serve::reactor_write", "0.2@13:panic").unwrap();

        // Clients must tolerate their connection dying mid-exchange;
        // what they may never see is a malformed or wrong response.
        let survived = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for c in 0..CLIENTS {
            let path = path.to_path_buf();
            let expect = expect.clone();
            let survived = Arc::clone(&survived);
            handles.push(std::thread::spawn(move || {
                for i in 0..6 {
                    let (pat, matches) = expect[(c + i) % expect.len()];
                    let mut s = connect(&path);
                    let req =
                        format!("{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"c{c}-q{i}\"}}");
                    if writeln!(s, "{req}").and_then(|()| s.flush()).is_err() {
                        continue; // conn killed while sending: allowed
                    }
                    // A killed conn (EOF or reset) before the reply is
                    // allowed; a *delivered* reply must be exact.
                    if let Ok(Some(line)) = try_read_line(&mut s) {
                        let resp = Json::parse(line.trim())
                            .unwrap_or_else(|e| panic!("bad response {line:?}: {e}"));
                        assert_eq!(
                            resp.get("matches").and_then(Json::as_u64),
                            Some(matches),
                            "surviving response must be exact: {resp:?}"
                        );
                        survived.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("client thread");
        }
        failpoint::remove("serve::reactor_read");
        failpoint::remove("serve::reactor_write");

        // The reactor itself must have survived: fresh connections get
        // exact answers for every pattern.
        let mut s = connect(&path);
        for (pat, matches) in &expect {
            let resp = roundtrip(
                &mut s,
                &format!("{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"after-{pat}\"}}"),
            );
            assert_eq!(
                resp.get("matches").and_then(Json::as_u64),
                Some(*matches),
                "{resp:?}"
            );
        }
        let health = roundtrip(&mut s, "{\"op\":\"health\",\"id\":\"h\"}");
        assert_eq!(
            health.get("ready").and_then(Json::as_bool),
            Some(true),
            "{health:?}"
        );
        drop(s);
        shutdown_and_drain(&svc, server, &path);
    });
}

/// Transactional updates: a panic injected at `serve::update_apply` —
/// after the new view is prepared, before it commits — must surface as
/// a typed `internal_error`, leave the old generation live (the served
/// graph, its generation counter, and every count unchanged), and once
/// disarmed the very same batch applies cleanly, bumping the generation
/// exactly once.
#[test]
fn update_fault_leaves_old_generation_intact() {
    let _s = failpoint::FailScenario::setup();
    quiet_injected_panics();
    for kind in transports() {
        let kind = *kind;
        watchdog(&format!("update/{kind}"), move || {
            let svc = service();
            let expect = expected_counts(&svc);
            let gen0 = svc.catalog().get("g").unwrap().generation();
            let path = sock_path(&format!("update_{kind}"));
            let server = Server::bind(kind, Arc::clone(&svc), &path);

            // Pick an edge whose insertion is a real mutation.
            let g0 = svc.catalog().get("g").unwrap().graph();
            let mut wedge = None;
            'outer: for u in 0..g0.num_vertices() as u32 {
                let nbrs = g0.neighbors(u);
                for (i, &x) in nbrs.iter().enumerate() {
                    for &y in &nbrs[i + 1..] {
                        if !g0.neighbors(x).contains(&y) {
                            wedge = Some((x, y));
                            break 'outer;
                        }
                    }
                }
            }
            let (a, b) = wedge.expect("an open wedge exists");
            let batch = format!(
                "{{\"op\":\"update\",\"graph\":\"g\",\"inserts\":[[{a},{b}]],\"id\":\"boom\"}}"
            );

            failpoint::configure("serve::update_apply", "panic").unwrap();
            let mut s = connect(&path);
            let resp = roundtrip(&mut s, &batch);
            assert_eq!(
                resp.get("code").and_then(Json::as_str),
                Some("internal_error"),
                "{kind}: armed update panic must surface as internal_error: {resp:?}"
            );
            failpoint::remove("serve::update_apply");

            // Nothing committed: same generation, and every count still
            // matches the pre-fault graph exactly.
            assert_eq!(
                svc.catalog().get("g").unwrap().generation(),
                gen0,
                "{kind}: failed update must not bump the generation"
            );
            for (pat, matches) in &expect {
                let resp = roundtrip(
                    &mut s,
                    &format!("{{\"op\":\"query\",\"pattern\":\"{pat}\",\"id\":\"pre-{pat}\"}}"),
                );
                assert_eq!(
                    resp.get("matches").and_then(Json::as_u64),
                    Some(*matches),
                    "{kind}: post-fault count for {pat} must equal the pre-update graph"
                );
            }

            // Disarmed, the identical batch commits: generation bumps by
            // exactly one and the daemon serves the mutated graph.
            let resp = roundtrip(&mut s, &batch);
            assert_eq!(
                resp.get("status").and_then(Json::as_str),
                Some("ok"),
                "{kind}: retried update must commit: {resp:?}"
            );
            assert_eq!(
                resp.get("generation").and_then(Json::as_u64),
                Some(gen0 + 1),
                "{kind}: exactly one generation bump after the retry"
            );
            assert_eq!(resp.get("inserted").and_then(Json::as_u64), Some(1));
            let g1 = svc.catalog().get("g").unwrap().graph();
            let want = run_query(&Query::Triangle.pattern(), &g1, &EngineConfig::light()).matches;
            let resp = roundtrip(
                &mut s,
                "{\"op\":\"query\",\"pattern\":\"triangle\",\"id\":\"post\"}",
            );
            assert_eq!(
                resp.get("matches").and_then(Json::as_u64),
                Some(want),
                "{kind}: post-commit count must reflect the mutation"
            );

            let health = roundtrip(&mut s, "{\"op\":\"health\",\"id\":\"h\"}");
            assert_eq!(
                health.get("ready").and_then(Json::as_bool),
                Some(true),
                "{health:?}"
            );
            drop(s);
            shutdown_and_drain(&svc, server, &path);
        });
    }
}
