//! Symmetry breaking: constrained counts times |Aut(P)| must equal raw
//! (duplicate-inclusive) counts — the defining identity of the
//! Grochow–Kellis construction — across engines and graph families.

use light::core::{EngineConfig, EngineVariant};
use light::graph::generators;
use light::pattern::automorphism::automorphisms;
use light::pattern::Query;

fn check_identity(q: Query, g: &light::graph::CsrGraph) {
    let p = q.pattern();
    let autos = automorphisms(&p).len() as u64;
    let with_sb = light::core::run_query(&p, g, &EngineConfig::light()).matches;
    let raw = light::core::run_query(&p, g, &EngineConfig::light().symmetry(false)).matches;
    assert_eq!(
        raw,
        with_sb * autos,
        "{}: raw {raw} != {with_sb} * {autos}",
        q.name()
    );
}

#[test]
fn identity_on_er_graphs() {
    let g = generators::erdos_renyi(60, 200, 5);
    for q in Query::ALL {
        check_identity(q, &g);
    }
}

#[test]
fn identity_on_ba_graphs() {
    let g = generators::barabasi_albert(80, 4, 17);
    for q in Query::ALL {
        check_identity(q, &g);
    }
}

#[test]
fn identity_on_complete_graph() {
    let g = generators::complete(9);
    for q in Query::ALL {
        check_identity(q, &g);
    }
}

#[test]
fn identity_holds_for_every_variant() {
    let g = generators::barabasi_albert(60, 3, 3);
    let q = Query::P2;
    let autos = automorphisms(&q.pattern()).len() as u64;
    for variant in EngineVariant::ALL {
        let cfg = EngineConfig::with_variant(variant);
        let with_sb = light::core::run_query(&q.pattern(), &g, &cfg).matches;
        let raw = light::core::run_query(&q.pattern(), &g, &cfg.clone().symmetry(false)).matches;
        assert_eq!(raw, with_sb * autos, "{}", variant.name());
    }
}

#[test]
fn constrained_matches_respect_partial_order() {
    let g = generators::barabasi_albert(50, 4, 9);
    let q = Query::P3; // 4-clique: total order constraints
    let cfg = EngineConfig::light();
    let (_, matches) = light::core::run_query_collecting(&q.pattern(), &g, &cfg);
    let po = q.partial_order();
    for m in &matches {
        for &(a, b) in po.pairs() {
            assert!(
                m[a as usize] < m[b as usize],
                "constraint {a}<{b} violated in {m:?}"
            );
        }
    }
    // For the 4-clique the constraints are a total order, so every match is
    // strictly increasing.
    for m in &matches {
        assert!(m.windows(2).all(|w| w[0] < w[1]));
    }
}
