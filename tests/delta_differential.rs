//! Differential tests for the dynamic-graph path (DESIGN.md §17): a
//! base CSR graph mutated through the delta overlay must count exactly
//! like a graph rebuilt from scratch from the same edge set — across
//! every catalog pattern, serial and parallel execution, the auxiliary
//! cache on and off, and before and after compaction. A second leg
//! checks the incremental count-maintenance identity the serve tier's
//! `subscribe` op relies on: `raw += created − destroyed` tracked by
//! edge-anchored delta enumeration stays equal to a full recount after
//! every batch.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use light::core::{automorphism_count, raw_delta, run_query, EngineConfig};
use light::graph::delta::DeltaGraph;
use light::graph::{generators, CsrGraph};
use light::parallel::{run_query_parallel, ParallelConfig};
use light::pattern::Query;

/// The full pattern catalog plus the triangle.
const CATALOG: [Query; 8] = [
    Query::Triangle,
    Query::P1,
    Query::P2,
    Query::P3,
    Query::P4,
    Query::P5,
    Query::P6,
    Query::P7,
];

/// Collect the undirected edge set of a graph as canonical `(u, v)` with
/// `u < v`.
fn edge_set(g: &CsrGraph) -> Vec<(u32, u32)> {
    let mut edges = Vec::with_capacity(g.num_edges());
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Rebuild-from-scratch reference: a fresh CSR from the same edge set.
/// `from_edges` may relabel; subgraph counts are isomorphism-invariant,
/// so any relabeling must leave every catalog count unchanged.
fn rebuilt(g: &CsrGraph) -> CsrGraph {
    light::graph::builder::from_edges(edge_set(g))
}

/// A batch of edge endpoints, as the serve tier's `update` op takes them.
type EdgeBatch = Vec<(u32, u32)>;

/// One random mutation batch: deletes biased toward edges that exist,
/// inserts biased toward edges that don't, with some deliberate no-ops
/// and self-loops mixed in to exercise normalization.
fn random_batch(rng: &mut StdRng, g: &CsrGraph, ops: usize) -> (EdgeBatch, EdgeBatch) {
    let n = g.num_vertices() as u32;
    let present = edge_set(g);
    let mut deletes = Vec::new();
    let mut inserts = Vec::new();
    for _ in 0..ops {
        if rng.random_bool(0.45) && !present.is_empty() {
            deletes.push(present[rng.random_range(0..present.len())]);
        } else {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            inserts.push((a, b)); // may be a self-loop or duplicate
        }
    }
    (deletes, inserts)
}

/// Every engine leg the serve tier can route a count through.
fn count_all_ways(pattern: &Query, g: &CsrGraph) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for aux in [true, false] {
        let cfg = EngineConfig::light().aux_cache(aux);
        out.push((
            format!("serial/aux={aux}"),
            run_query(&pattern.pattern(), g, &cfg).matches,
        ));
        out.push((
            format!("parallel/aux={aux}"),
            run_query_parallel(&pattern.pattern(), g, &cfg, &ParallelConfig::new(3))
                .report
                .matches,
        ));
    }
    out
}

/// Tentpole differential: after every batch the overlay's merged view
/// counts exactly like a graph rebuilt from scratch, across the full
/// pattern × execution matrix; compaction changes nothing.
#[test]
fn overlay_counts_match_rebuild_across_matrix() {
    let mut rng = StdRng::seed_from_u64(0x11617);
    let base = Arc::new(generators::erdos_renyi(140, 420, 7));
    let mut delta = DeltaGraph::new(Arc::clone(&base));

    for batch in 0..6 {
        let pre = delta.merged_arc();
        let (deletes, inserts) = random_batch(&mut rng, &pre, 30);
        delta.apply(&deletes, &inserts);
        let post = delta.merged_arc();
        let reference = rebuilt(&post);
        assert_eq!(post.num_edges(), reference.num_edges(), "batch {batch}");

        // Full matrix on the first and last batches, a cheap spot-check
        // (triangle only) in between: the overlay either merges right for
        // every pattern or it doesn't — the matrix does not depend on
        // which batch it runs after.
        let patterns: &[Query] = if batch == 0 || batch == 5 {
            &CATALOG
        } else {
            &CATALOG[..1]
        };
        for q in patterns {
            let want = run_query(&q.pattern(), &reference, &EngineConfig::light()).matches;
            for (leg, got) in count_all_ways(q, &post) {
                assert_eq!(
                    got,
                    want,
                    "batch {batch}, {} via {leg}: overlay={got} rebuilt={want}",
                    q.name()
                );
            }
        }

        // Mid-sequence compaction: folding the buffers into a fresh base
        // must not change a single count, and later batches then mutate
        // the compacted base.
        if batch == 2 {
            assert!(delta.is_dirty(), "random batches must leave pending edges");
            let folded = delta.compact();
            assert_eq!(delta.pending_edges(), 0);
            assert_eq!(folded.num_edges(), reference.num_edges());
            for q in &CATALOG {
                let want = run_query(&q.pattern(), &reference, &EngineConfig::light()).matches;
                for (leg, got) in count_all_ways(q, &folded) {
                    assert_eq!(got, want, "post-compaction {} via {leg}", q.name());
                }
            }
        }
    }
}

/// Incremental-maintenance leg: the running raw count maintained by
/// edge-anchored delta enumeration equals `aut × full recount` after
/// every batch — the exact invariant the serve tier's subscriptions
/// depend on.
#[test]
fn incremental_counts_match_full_recount() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let base = Arc::new(generators::erdos_renyi(120, 360, 11));
    let mut delta = DeltaGraph::new(Arc::clone(&base));
    let cfg = EngineConfig::light();

    // Maintained patterns: keep the heavy tail out so the per-batch
    // recount stays fast; the tentpole test covers the full catalog.
    let maintained = [Query::Triangle, Query::P1, Query::P2, Query::P3];
    let mut raw: Vec<u64> = maintained
        .iter()
        .map(|q| {
            let p = q.pattern();
            run_query(&p, &base, &cfg).matches * automorphism_count(&p)
        })
        .collect();

    for batch in 0..8 {
        let pre = delta.merged_arc();
        let (deletes, inserts) = random_batch(&mut rng, &pre, 20);
        let report = delta.apply(&deletes, &inserts);
        let post = delta.merged_arc();

        for (i, q) in maintained.iter().enumerate() {
            let p = q.pattern();
            let (destroyed, created) =
                raw_delta(&p, &pre, &post, &report.deleted, &report.inserted, &cfg);
            raw[i] = (raw[i] + created).saturating_sub(destroyed);

            let aut = automorphism_count(&p);
            let full = run_query(&p, &post, &cfg).matches;
            assert_eq!(
                raw[i],
                full * aut,
                "batch {batch}, {}: maintained raw {} != {} × aut {}",
                q.name(),
                raw[i],
                full,
                aut
            );
        }

        // Halfway through, compact and rebase the running counts onto the
        // fresh base — the maintained totals must survive unchanged, as
        // they do in the serve tier when the threshold trips.
        if batch == 3 {
            let folded = delta.compact();
            for (i, q) in maintained.iter().enumerate() {
                let p = q.pattern();
                assert_eq!(
                    raw[i],
                    run_query(&p, &folded, &cfg).matches * automorphism_count(&p),
                    "compaction must not disturb maintained count for {}",
                    q.name()
                );
            }
        }
    }
}

/// Deletes-then-reinserts round-trip: a batch that removes a set of
/// edges followed by a batch that puts them back must restore every
/// count exactly, and leave the overlay logically clean of those edges.
#[test]
fn delete_insert_roundtrip_restores_counts() {
    let base = Arc::new(generators::barabasi_albert(200, 3, 3));
    let before: Vec<u64> = CATALOG
        .iter()
        .map(|q| run_query(&q.pattern(), &base, &EngineConfig::light()).matches)
        .collect();

    let victims: Vec<(u32, u32)> = edge_set(&base).into_iter().step_by(7).take(40).collect();
    let mut delta = DeltaGraph::new(Arc::clone(&base));
    let out = delta.apply(&victims, &[]);
    assert_eq!(out.deleted.len(), victims.len());
    let in_between = delta.merged_arc();
    assert_eq!(in_between.num_edges(), base.num_edges() - victims.len());

    let back = delta.apply(&[], &victims);
    assert_eq!(back.inserted.len(), victims.len());
    let restored = delta.merged_arc();
    assert_eq!(restored.num_edges(), base.num_edges());
    for (q, want) in CATALOG.iter().zip(&before) {
        assert_eq!(
            run_query(&q.pattern(), &restored, &EngineConfig::light()).matches,
            *want,
            "round-trip must restore {}",
            q.name()
        );
    }
}
