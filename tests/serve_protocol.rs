//! Protocol golden tests for the resident query service: malformed
//! requests, typed overload rejections under admission pressure, and
//! per-query deadline responses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use light::core::EngineConfig;
use light::serve::json::Json;
use light::serve::{GraphCatalog, QueryService, ServeConfig};

fn service_with(cfg: ServeConfig, n: usize) -> Arc<QueryService> {
    let mut catalog = GraphCatalog::new();
    catalog
        .insert("g", light::graph::generators::barabasi_albert(n, 3, 77))
        .unwrap();
    Arc::new(QueryService::new(catalog, cfg))
}

fn parse(resp: &str) -> Json {
    Json::parse(resp).unwrap_or_else(|e| panic!("response is not valid JSON ({e}): {resp}"))
}

fn assert_error(resp: &str, code: &str) {
    let doc = parse(resp);
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("error"),
        "{resp}"
    );
    assert_eq!(doc.get("code").and_then(Json::as_str), Some(code), "{resp}");
    assert!(
        doc.get("error").and_then(Json::as_str).is_some(),
        "error responses carry a message: {resp}"
    );
}

#[test]
fn malformed_requests_get_typed_errors() {
    let svc = service_with(ServeConfig::default(), 200);

    // Golden table: input line → expected error code.
    let cases: &[(&str, &str)] = &[
        ("", "bad_request"),
        ("not json", "bad_request"),
        ("{\"op\":\"query\",", "bad_request"),
        ("[1,2,3]", "bad_request"),
        ("\"just a string\"", "bad_request"),
        ("{}", "bad_request"),          // missing op
        ("{\"op\":42}", "bad_request"), // op not a string
        ("{\"op\":\"nope\"}", "unknown_op"),
        ("{\"op\":\"query\"}", "bad_request"), // missing pattern
        ("{\"op\":\"query\",\"pattern\":7}", "bad_request"), // pattern not a string
        ("{\"op\":\"query\",\"pattern\":\"zigzag9\"}", "bad_pattern"),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"graph\":\"missing\"}",
            "unknown_graph",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"timeout_ms\":-5}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"timeout_ms\":\"soon\"}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"threads\":1.5}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"variant\":\"turbo\"}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"profile\":\"yes\"}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"id\":{\"a\":1}}",
            "bad_request",
        ),
    ];
    for (line, code) in cases {
        assert_error(&svc.handle_line(line), code);
    }

    // Oversized request: typed bad_request, never a panic or a truncated
    // parse.
    let big = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(100_000));
    assert_error(&svc.handle_line(&big), "bad_request");

    // The id is echoed on errors whenever it is recoverable.
    let resp = svc.handle_line("{\"op\":\"nope\",\"id\":\"req-7\"}");
    assert_eq!(parse(&resp).get("id").and_then(Json::as_str), Some("req-7"));
    let resp = svc.handle_line("{\"op\":\"nope\",\"id\":42}");
    assert_eq!(parse(&resp).get("id").and_then(Json::as_u64), Some(42));
}

#[test]
fn overload_rejections_are_typed_and_bounded() {
    // One execution slot, zero queue: the second concurrent query must be
    // rejected with a typed overloaded response, not block or error.
    let svc = service_with(
        ServeConfig {
            max_concurrent: 1,
            queue_depth: 0,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(30)),
            drain_grace: Duration::from_secs(5),
            idle_timeout: Some(Duration::from_secs(30)),
            mem_watermark: None,
            flat_topology: false,
            // Overload-timing golden: keep the batch gate's window out.
            batch_window: None,
            shared_aux: false,
            compact_threshold: Some(32_768),
            engine: EngineConfig::light(),
        },
        3000,
    );

    // Hold the only slot with a slow query (P5 on a larger graph).
    let slow = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            svc.handle_line("{\"op\":\"query\",\"pattern\":\"P5\",\"id\":\"slow\"}")
        })
    };

    // Wait until the slow query actually occupies the slot, then probe.
    let deadline = Instant::now() + Duration::from_secs(10);
    let overloaded = loop {
        if svc.in_flight() > 0 {
            let resp =
                svc.handle_line("{\"op\":\"query\",\"pattern\":\"triangle\",\"id\":\"probe\"}");
            let doc = parse(&resp);
            match doc.get("status").and_then(Json::as_str) {
                Some("overloaded") => break resp,
                // The slow query finished between the gauge read and the
                // probe; it can't be re-held — only possible on a fast
                // machine with an already-warm plan. Retry while in-flight.
                Some("ok") => {}
                other => panic!("unexpected status {other:?}: {resp}"),
            }
        }
        assert!(
            Instant::now() < deadline,
            "slow query never occupied the slot"
        );
        if slow.is_finished() {
            // Too fast to observe; the admission unit tests in
            // crates/serve cover the rejection path deterministically.
            slow.join().unwrap();
            return;
        }
        std::thread::yield_now();
    };

    let doc = parse(&overloaded);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("overloaded"));
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("probe"));
    assert_eq!(doc.get("in_flight").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("queued").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("max_concurrent").and_then(Json::as_u64), Some(1));
    // Every overloaded rejection carries a computed, clamped retry hint.
    let hint = doc
        .get("retry_after_ms")
        .and_then(Json::as_u64)
        .expect("overloaded carries retry_after_ms");
    assert!((25..=30_000).contains(&hint), "hint {hint} outside clamp");

    let slow_resp = slow.join().unwrap();
    assert_eq!(
        parse(&slow_resp).get("status").and_then(Json::as_str),
        Some("ok"),
        "{slow_resp}"
    );

    // The rejection is counted in service metrics.
    let stats = parse(&svc.handle_line("{\"op\":\"stats\"}"));
    assert!(
        stats
            .get("queries")
            .and_then(|q| q.get("overloaded"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
}

#[test]
fn per_query_deadline_yields_partial_timeout_response() {
    let svc = service_with(ServeConfig::default(), 4000);
    // 1 ms on a heavy pattern: the engine's budget polling must stop the
    // run and the service must report a partial result, not an error.
    let resp = svc
        .handle_line("{\"op\":\"query\",\"pattern\":\"P5\",\"timeout_ms\":1,\"id\":\"deadline\"}");
    let doc = parse(&resp);
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("partial"),
        "{resp}"
    );
    assert_eq!(
        doc.get("outcome").and_then(Json::as_str),
        Some("timeout"),
        "{resp}"
    );
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("deadline"));
    assert!(doc.get("matches").and_then(Json::as_u64).is_some());

    let stats = parse(&svc.handle_line("{\"op\":\"stats\"}"));
    let q = stats.get("queries").unwrap();
    assert_eq!(q.get("partial").and_then(Json::as_u64), Some(1));
    assert_eq!(q.get("timeout").and_then(Json::as_u64), Some(1));
}

#[test]
fn client_timeout_is_capped_by_daemon_default() {
    // Daemon cap 1 ms; client asks for 60 s. The cap must win.
    let svc = service_with(
        ServeConfig {
            default_timeout: Some(Duration::from_millis(1)),
            ..ServeConfig::default()
        },
        4000,
    );
    let resp = svc.handle_line(
        "{\"op\":\"query\",\"pattern\":\"P5\",\"timeout_ms\":60000,\"id\":\"capped\"}",
    );
    let doc = parse(&resp);
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("partial"),
        "{resp}"
    );
    assert_eq!(
        doc.get("outcome").and_then(Json::as_str),
        Some("timeout"),
        "{resp}"
    );
}

#[test]
fn health_response_reports_readiness_and_degradation() {
    let svc = service_with(ServeConfig::default(), 200);

    // Golden shape on a healthy, idle daemon.
    let doc = parse(&svc.handle_line("{\"op\":\"health\",\"id\":\"h1\"}"));
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("h1"));
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("draining").and_then(Json::as_bool), Some(false));
    let hint = doc
        .get("retry_after_ms")
        .and_then(Json::as_u64)
        .expect("health always computes a retry hint");
    assert!((25..=30_000).contains(&hint));
    let cat = doc.get("catalog").expect("catalog object");
    assert_eq!(cat.get("graphs").and_then(Json::as_u64), Some(1));
    assert_eq!(cat.get("healthy").and_then(Json::as_u64), Some(1));
    let ex = doc.get("executor").expect("executor object");
    assert_eq!(ex.get("in_flight").and_then(Json::as_u64), Some(0));
    assert_eq!(ex.get("queued").and_then(Json::as_u64), Some(0));
    assert_eq!(ex.get("panics_total").and_then(Json::as_u64), Some(0));
    assert!(ex
        .get("last_activity_ms_ago")
        .and_then(Json::as_u64)
        .is_some());
    let mem = doc.get("memory").expect("memory object");
    assert_eq!(mem.get("tripped").and_then(Json::as_bool), Some(false));
    // resident_bytes is a number on Linux, null elsewhere; the key must
    // exist either way.
    assert!(mem.get("resident_bytes").is_some());
    assert!(mem.get("watermark_bytes").is_some());

    // After shutdown the daemon still answers health, but not ready.
    let _ = svc.handle_line("{\"op\":\"shutdown\"}");
    let doc = parse(&svc.handle_line("{\"op\":\"health\",\"id\":\"h2\"}"));
    assert_eq!(doc.get("ready").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("draining").and_then(Json::as_bool), Some(true));
}

#[test]
fn internal_error_renderer_golden() {
    use light::serve::protocol::render_internal;

    // The exact wire shape the supervisor emits for a contained panic.
    let line = render_internal(
        "\"req-9\"",
        "failpoint serve::dispatch triggered",
        &[("graph", "g"), ("pattern", "triangle")],
    );
    assert_eq!(
        line,
        "{\"id\":\"req-9\",\"status\":\"error\",\"code\":\"internal_error\",\
         \"error\":\"query execution panicked (contained): failpoint serve::dispatch \
         triggered\",\"graph\":\"g\",\"pattern\":\"triangle\"}"
    );
    // And it is valid JSON with the id echoed, like every response.
    let doc = parse(&line);
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("req-9"));
    assert_eq!(
        doc.get("code").and_then(Json::as_str),
        Some("internal_error")
    );
}

mod noise {
    //! Property: random byte noise on the wire never desynchronizes the
    //! per-connection NDJSON parser — every line (garbage or not) gets
    //! exactly one response, and valid requests interleaved with the
    //! noise still get their correct answers, in order.

    use super::*;
    use proptest::collection;
    use proptest::prelude::*;
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::sync::OnceLock;

    /// One shared daemon for all cases: (socket path, triangle count).
    fn daemon() -> &'static (std::path::PathBuf, u64) {
        static DAEMON: OnceLock<(std::path::PathBuf, u64)> = OnceLock::new();
        DAEMON.get_or_init(|| {
            let svc = service_with(ServeConfig::default(), 200);
            let g = svc.catalog().get("g").unwrap().graph();
            let tri = light::core::run_query(
                &light::pattern::Query::Triangle.pattern(),
                &g,
                &light::core::EngineConfig::light(),
            )
            .matches;
            let path =
                std::env::temp_dir().join(format!("light_serve_noise_{}.sock", std::process::id()));
            // Held for the whole test binary; the OS reaps it on exit.
            let server = light::serve::SocketServer::bind(svc, &path).expect("bind");
            std::mem::forget(server);
            (path, tri)
        })
    }

    fn connect(path: &std::path::Path) -> UnixStream {
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match UnixStream::connect(path) {
                Ok(s) => return s,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20))
                }
                Err(e) => panic!("cannot connect: {e}"),
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn byte_noise_never_desynchronizes_the_parser(
            lines in collection::vec(collection::vec(0u8..=255u8, 0..64), 0..6)
        ) {
            let (path, tri) = daemon();
            let s = connect(path);
            let mut r = BufReader::new(s.try_clone().expect("clone"));
            let mut w = s;
            let mut line = String::new();
            for (j, noise) in lines.iter().enumerate() {
                // One line of noise: newline bytes would frame extra
                // lines, so map them away — the property is per line.
                let noise: Vec<u8> =
                    noise.iter().map(|&b| if b == b'\n' { b'?' } else { b }).collect();
                w.write_all(&noise).expect("noise");
                w.write_all(b"\n").expect("frame");
                w.flush().expect("flush");
                line.clear();
                r.read_line(&mut line).expect("noise response");
                let doc = Json::parse(line.trim())
                    .unwrap_or_else(|e| panic!("non-JSON response to noise ({e}): {line:?}"));
                prop_assert!(doc.get("status").is_some(), "responses always carry status");

                // The very next valid request must be answered correctly:
                // the parser resynchronized at the newline.
                writeln!(w, "{{\"op\":\"ping\",\"id\":\"sync-{j}\"}}").expect("ping");
                w.flush().expect("flush");
                line.clear();
                r.read_line(&mut line).expect("ping response");
                let doc = Json::parse(line.trim()).expect("valid JSON");
                prop_assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
                prop_assert_eq!(
                    doc.get("id").and_then(Json::as_str),
                    Some(format!("sync-{j}").as_str())
                );
            }
            // Full query path still exact after all the noise.
            writeln!(w, "{{\"op\":\"query\",\"pattern\":\"triangle\",\"id\":\"q\"}}")
                .expect("query");
            w.flush().expect("flush");
            line.clear();
            r.read_line(&mut line).expect("query response");
            let doc = Json::parse(line.trim()).expect("valid JSON");
            prop_assert_eq!(doc.get("matches").and_then(Json::as_u64), Some(*tri));
        }
    }
}
