//! Protocol golden tests for the resident query service: malformed
//! requests, typed overload rejections under admission pressure, and
//! per-query deadline responses.

use std::sync::Arc;
use std::time::{Duration, Instant};

use light::core::EngineConfig;
use light::serve::json::Json;
use light::serve::{GraphCatalog, QueryService, ServeConfig};

fn service_with(cfg: ServeConfig, n: usize) -> Arc<QueryService> {
    let mut catalog = GraphCatalog::new();
    catalog
        .insert("g", light::graph::generators::barabasi_albert(n, 3, 77))
        .unwrap();
    Arc::new(QueryService::new(catalog, cfg))
}

fn parse(resp: &str) -> Json {
    Json::parse(resp).unwrap_or_else(|e| panic!("response is not valid JSON ({e}): {resp}"))
}

fn assert_error(resp: &str, code: &str) {
    let doc = parse(resp);
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("error"),
        "{resp}"
    );
    assert_eq!(doc.get("code").and_then(Json::as_str), Some(code), "{resp}");
    assert!(
        doc.get("error").and_then(Json::as_str).is_some(),
        "error responses carry a message: {resp}"
    );
}

#[test]
fn malformed_requests_get_typed_errors() {
    let svc = service_with(ServeConfig::default(), 200);

    // Golden table: input line → expected error code.
    let cases: &[(&str, &str)] = &[
        ("", "bad_request"),
        ("not json", "bad_request"),
        ("{\"op\":\"query\",", "bad_request"),
        ("[1,2,3]", "bad_request"),
        ("\"just a string\"", "bad_request"),
        ("{}", "bad_request"),          // missing op
        ("{\"op\":42}", "bad_request"), // op not a string
        ("{\"op\":\"nope\"}", "unknown_op"),
        ("{\"op\":\"query\"}", "bad_request"), // missing pattern
        ("{\"op\":\"query\",\"pattern\":7}", "bad_request"), // pattern not a string
        ("{\"op\":\"query\",\"pattern\":\"zigzag9\"}", "bad_pattern"),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"graph\":\"missing\"}",
            "unknown_graph",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"timeout_ms\":-5}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"timeout_ms\":\"soon\"}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"threads\":1.5}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"variant\":\"turbo\"}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"profile\":\"yes\"}",
            "bad_request",
        ),
        (
            "{\"op\":\"query\",\"pattern\":\"triangle\",\"id\":{\"a\":1}}",
            "bad_request",
        ),
    ];
    for (line, code) in cases {
        assert_error(&svc.handle_line(line), code);
    }

    // Oversized request: typed bad_request, never a panic or a truncated
    // parse.
    let big = format!("{{\"op\":\"ping\",\"pad\":\"{}\"}}", "x".repeat(100_000));
    assert_error(&svc.handle_line(&big), "bad_request");

    // The id is echoed on errors whenever it is recoverable.
    let resp = svc.handle_line("{\"op\":\"nope\",\"id\":\"req-7\"}");
    assert_eq!(parse(&resp).get("id").and_then(Json::as_str), Some("req-7"));
    let resp = svc.handle_line("{\"op\":\"nope\",\"id\":42}");
    assert_eq!(parse(&resp).get("id").and_then(Json::as_u64), Some(42));
}

#[test]
fn overload_rejections_are_typed_and_bounded() {
    // One execution slot, zero queue: the second concurrent query must be
    // rejected with a typed overloaded response, not block or error.
    let svc = service_with(
        ServeConfig {
            max_concurrent: 1,
            queue_depth: 0,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(30)),
            drain_grace: Duration::from_secs(5),
            flat_topology: false,
            engine: EngineConfig::light(),
        },
        3000,
    );

    // Hold the only slot with a slow query (P5 on a larger graph).
    let slow = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || {
            svc.handle_line("{\"op\":\"query\",\"pattern\":\"P5\",\"id\":\"slow\"}")
        })
    };

    // Wait until the slow query actually occupies the slot, then probe.
    let deadline = Instant::now() + Duration::from_secs(10);
    let overloaded = loop {
        if svc.in_flight() > 0 {
            let resp =
                svc.handle_line("{\"op\":\"query\",\"pattern\":\"triangle\",\"id\":\"probe\"}");
            let doc = parse(&resp);
            match doc.get("status").and_then(Json::as_str) {
                Some("overloaded") => break resp,
                // The slow query finished between the gauge read and the
                // probe; it can't be re-held — only possible on a fast
                // machine with an already-warm plan. Retry while in-flight.
                Some("ok") => {}
                other => panic!("unexpected status {other:?}: {resp}"),
            }
        }
        assert!(
            Instant::now() < deadline,
            "slow query never occupied the slot"
        );
        if slow.is_finished() {
            // Too fast to observe; the admission unit tests in
            // crates/serve cover the rejection path deterministically.
            slow.join().unwrap();
            return;
        }
        std::thread::yield_now();
    };

    let doc = parse(&overloaded);
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("overloaded"));
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("probe"));
    assert_eq!(doc.get("in_flight").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("queued").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("max_concurrent").and_then(Json::as_u64), Some(1));

    let slow_resp = slow.join().unwrap();
    assert_eq!(
        parse(&slow_resp).get("status").and_then(Json::as_str),
        Some("ok"),
        "{slow_resp}"
    );

    // The rejection is counted in service metrics.
    let stats = parse(&svc.handle_line("{\"op\":\"stats\"}"));
    assert!(
        stats
            .get("queries")
            .and_then(|q| q.get("overloaded"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );
}

#[test]
fn per_query_deadline_yields_partial_timeout_response() {
    let svc = service_with(ServeConfig::default(), 4000);
    // 1 ms on a heavy pattern: the engine's budget polling must stop the
    // run and the service must report a partial result, not an error.
    let resp = svc
        .handle_line("{\"op\":\"query\",\"pattern\":\"P5\",\"timeout_ms\":1,\"id\":\"deadline\"}");
    let doc = parse(&resp);
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("partial"),
        "{resp}"
    );
    assert_eq!(
        doc.get("outcome").and_then(Json::as_str),
        Some("timeout"),
        "{resp}"
    );
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("deadline"));
    assert!(doc.get("matches").and_then(Json::as_u64).is_some());

    let stats = parse(&svc.handle_line("{\"op\":\"stats\"}"));
    let q = stats.get("queries").unwrap();
    assert_eq!(q.get("partial").and_then(Json::as_u64), Some(1));
    assert_eq!(q.get("timeout").and_then(Json::as_u64), Some(1));
}

#[test]
fn client_timeout_is_capped_by_daemon_default() {
    // Daemon cap 1 ms; client asks for 60 s. The cap must win.
    let svc = service_with(
        ServeConfig {
            default_timeout: Some(Duration::from_millis(1)),
            ..ServeConfig::default()
        },
        4000,
    );
    let resp = svc.handle_line(
        "{\"op\":\"query\",\"pattern\":\"P5\",\"timeout_ms\":60000,\"id\":\"capped\"}",
    );
    let doc = parse(&resp);
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("partial"),
        "{resp}"
    );
    assert_eq!(
        doc.get("outcome").and_then(Json::as_str),
        Some("timeout"),
        "{resp}"
    );
}
