//! End-to-end tests for the serve tier's dynamic-graph ops: `update`
//! batches that mutate a served graph in place, the cross-query cache
//! invalidation contract (an update between two identical queries must
//! change the answer — and the second query must not be served a stale
//! plan or a stale count), and `subscribe`/`unsubscribe` incremental
//! count maintenance whose deltas ride on every update response.

use std::sync::Arc;
use std::time::Duration;

use light::core::{run_query, EngineConfig};
use light::pattern::Query;
use light::serve::json::Json;
use light::serve::{GraphCatalog, QueryService, ServeConfig};

fn service() -> Arc<QueryService> {
    let mut catalog = GraphCatalog::new();
    catalog
        .insert("g", light::graph::generators::barabasi_albert(250, 3, 41))
        .unwrap();
    Arc::new(QueryService::new(
        catalog,
        ServeConfig {
            max_concurrent: 4,
            queue_depth: 16,
            threads_per_query: 1,
            default_timeout: Some(Duration::from_secs(60)),
            drain_grace: Duration::from_secs(5),
            idle_timeout: Some(Duration::from_secs(30)),
            mem_watermark: None,
            flat_topology: false,
            batch_window: None,
            shared_aux: true,
            compact_threshold: Some(32_768),
            engine: EngineConfig::light(),
        },
    ))
}

fn parse(resp: &str) -> Json {
    Json::parse(resp).unwrap_or_else(|e| panic!("invalid response JSON ({e}): {resp}"))
}

fn ok(doc: &Json) -> &Json {
    assert_eq!(
        doc.get("status").and_then(Json::as_str),
        Some("ok"),
        "{doc:?}"
    );
    doc
}

/// An edge absent from the served graph whose insertion creates at least
/// one new triangle: two neighbors of some vertex not yet adjacent.
fn missing_triangle_edge(g: &light::graph::CsrGraph) -> (u32, u32) {
    for u in 0..g.num_vertices() as u32 {
        let nbrs = g.neighbors(u);
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if !g.neighbors(a).contains(&b) {
                    return (a, b);
                }
            }
        }
    }
    panic!("graph has no open wedge");
}

/// Satellite regression: an `update` between two identical queries must
/// change the served count, with the post-update query reflecting the
/// mutated graph exactly (stale plans and stale shared aux state would
/// both surface here as a wrong second count).
#[test]
fn update_between_identical_queries_changes_the_count() {
    let svc = service();
    let q = |id: &str| {
        format!("{{\"op\":\"query\",\"pattern\":\"triangle\",\"graph\":\"g\",\"id\":\"{id}\"}}")
    };

    let before = parse(&svc.handle_line(&q("before")));
    let count_before = ok(&before).get("matches").and_then(Json::as_u64).unwrap();

    // Warm the plan cache with a second identical query: must be a hit.
    let warm = parse(&svc.handle_line(&q("warm")));
    assert_eq!(
        ok(&warm).get("matches").and_then(Json::as_u64),
        Some(count_before)
    );
    assert_eq!(warm.get("plan_cache").and_then(Json::as_str), Some("hit"));

    let (a, b) = missing_triangle_edge(&svc.catalog().get("g").unwrap().graph());
    let upd = parse(&svc.handle_line(&format!(
        "{{\"op\":\"update\",\"graph\":\"g\",\"inserts\":[[{a},{b}]],\"id\":\"u\"}}"
    )));
    assert_eq!(ok(&upd).get("inserted").and_then(Json::as_u64), Some(1));
    assert_eq!(upd.get("generation").and_then(Json::as_u64), Some(1));

    let after = parse(&svc.handle_line(&q("after")));
    let count_after = ok(&after).get("matches").and_then(Json::as_u64).unwrap();
    assert!(
        count_after > count_before,
        "closing an open wedge must create triangles ({count_before} -> {count_after})"
    );
    // The generation is part of the plan key: the post-update query can
    // never reuse a pre-update plan.
    assert_eq!(after.get("plan_cache").and_then(Json::as_str), Some("miss"));

    // Ground truth: the daemon's count equals a fresh one-shot run on the
    // mutated graph it now serves.
    let g = svc.catalog().get("g").unwrap().graph();
    let want = run_query(&Query::Triangle.pattern(), &g, &EngineConfig::light()).matches;
    assert_eq!(count_after, want);

    // Deleting the edge again restores the original count exactly.
    let upd = parse(&svc.handle_line(&format!(
        "{{\"op\":\"update\",\"graph\":\"g\",\"deletes\":[[{a},{b}]],\"id\":\"u2\"}}"
    )));
    assert_eq!(ok(&upd).get("deleted").and_then(Json::as_u64), Some(1));
    assert_eq!(upd.get("generation").and_then(Json::as_u64), Some(2));
    let restored = parse(&svc.handle_line(&q("restored")));
    assert_eq!(
        ok(&restored).get("matches").and_then(Json::as_u64),
        Some(count_before)
    );
}

/// The update response's bookkeeping fields: generations are monotone,
/// idempotent no-ops are counted but change nothing, and a forced
/// compaction folds the overlay (pending returns to zero) without
/// touching any count.
#[test]
fn update_bookkeeping_and_forced_compaction() {
    let svc = service();
    let (a, b) = missing_triangle_edge(&svc.catalog().get("g").unwrap().graph());

    let upd = parse(&svc.handle_line(&format!(
        "{{\"op\":\"update\",\"graph\":\"g\",\"inserts\":[[{a},{b}],[{a},{b}],[{a},{a}]],\"id\":\"u\"}}"
    )));
    ok(&upd);
    assert_eq!(upd.get("inserted").and_then(Json::as_u64), Some(1));
    assert_eq!(upd.get("dup_inserts").and_then(Json::as_u64), Some(2));
    assert_eq!(upd.get("pending").and_then(Json::as_u64), Some(1));
    assert_eq!(upd.get("compacted").and_then(Json::as_bool), Some(false));

    // Deleting a never-present edge is a counted no-op.
    let upd = parse(&svc.handle_line(
        "{\"op\":\"update\",\"graph\":\"g\",\"deletes\":[[0,0]],\"inserts\":[],\"id\":\"noop\",\"compact\":false}",
    ));
    // A self-loop delete is dropped by normalization; the edge list was
    // non-empty so the request is valid.
    ok(&upd);
    assert_eq!(upd.get("deleted").and_then(Json::as_u64), Some(0));
    assert_eq!(upd.get("missing_deletes").and_then(Json::as_u64), Some(1));

    let mid = parse(
        &svc.handle_line("{\"op\":\"query\",\"pattern\":\"p2\",\"graph\":\"g\",\"id\":\"mid\"}"),
    );
    let count_mid = ok(&mid).get("matches").and_then(Json::as_u64).unwrap();

    // Force compaction: the overlay folds into a fresh base.
    let upd = parse(
        &svc.handle_line("{\"op\":\"update\",\"graph\":\"g\",\"compact\":true,\"id\":\"fold\"}"),
    );
    ok(&upd);
    assert_eq!(upd.get("compacted").and_then(Json::as_bool), Some(true));
    assert_eq!(upd.get("pending").and_then(Json::as_u64), Some(0));

    let post = parse(
        &svc.handle_line("{\"op\":\"query\",\"pattern\":\"p2\",\"graph\":\"g\",\"id\":\"post\"}"),
    );
    assert_eq!(
        ok(&post).get("matches").and_then(Json::as_u64),
        Some(count_mid),
        "compaction must not change any count"
    );

    // The catalog op reports the entry's generation and pending state.
    let cat = parse(&svc.handle_line("{\"op\":\"catalog\",\"id\":\"c\"}"));
    let graphs = match cat.get("graphs") {
        Some(Json::Arr(items)) => items,
        other => panic!("catalog must list graphs, got {other:?}"),
    };
    let entry = &graphs[0];
    assert_eq!(entry.get("pending").and_then(Json::as_u64), Some(0));
    assert!(entry.get("generation").and_then(Json::as_u64).unwrap() >= 3);
}

/// Subscriptions: registering computes a full count; every later update
/// response carries the maintained count for each live subscription, and
/// that maintained count always equals a fresh full query on the mutated
/// graph. Unsubscribing stops the deltas.
#[test]
fn subscriptions_maintain_exact_counts_across_updates() {
    let svc = service();

    let sub = parse(&svc.handle_line(
        "{\"op\":\"subscribe\",\"pattern\":\"triangle\",\"graph\":\"g\",\"id\":\"s\"}",
    ));
    ok(&sub);
    let sub_id = sub.get("sub").and_then(Json::as_u64).unwrap();
    let initial = sub.get("count").and_then(Json::as_u64).unwrap();
    let g = svc.catalog().get("g").unwrap().graph();
    assert_eq!(
        initial,
        run_query(&Query::Triangle.pattern(), &g, &EngineConfig::light()).matches
    );

    // A second subscription on another pattern rides the same updates.
    let sub2 = parse(
        &svc.handle_line("{\"op\":\"subscribe\",\"pattern\":\"p1\",\"graph\":\"g\",\"id\":\"s2\"}"),
    );
    ok(&sub2);
    let sub2_id = sub2.get("sub").and_then(Json::as_u64).unwrap();
    assert_ne!(sub_id, sub2_id);

    // Drive a few mutation batches; after each, the maintained counts in
    // the update response must equal fresh full queries.
    for round in 0..3 {
        let g = svc.catalog().get("g").unwrap().graph();
        let (a, b) = missing_triangle_edge(&g);
        let nbrs = g.neighbors(0);
        let del = (0u32, nbrs[round % nbrs.len()]);
        let upd = parse(&svc.handle_line(&format!(
            "{{\"op\":\"update\",\"graph\":\"g\",\"inserts\":[[{a},{b}]],\"deletes\":[[{},{}]],\"id\":\"r{round}\"}}",
            del.0, del.1
        )));
        ok(&upd);
        let subs = match upd.get("subscriptions") {
            Some(Json::Arr(items)) => items.clone(),
            other => panic!("update must carry subscription deltas, got {other:?}"),
        };
        assert_eq!(subs.len(), 2, "both subscriptions ride every update");

        let now = svc.catalog().get("g").unwrap().graph();
        for s in &subs {
            let id = s.get("sub").and_then(Json::as_u64).unwrap();
            let count = s.get("count").and_then(Json::as_u64).unwrap();
            let q = if id == sub_id {
                Query::Triangle
            } else {
                Query::P1
            };
            let want = run_query(&q.pattern(), &now, &EngineConfig::light()).matches;
            assert_eq!(
                count,
                want,
                "round {round}: maintained {} count {count} != full recount {want}",
                q.name()
            );
        }
    }

    // Unsubscribe the triangle watcher; later updates only carry the P1
    // subscription.
    let un = parse(&svc.handle_line(&format!(
        "{{\"op\":\"unsubscribe\",\"sub\":{sub_id},\"id\":\"bye\"}}"
    )));
    assert_eq!(ok(&un).get("removed").and_then(Json::as_bool), Some(true));
    let again = parse(&svc.handle_line(&format!(
        "{{\"op\":\"unsubscribe\",\"sub\":{sub_id},\"id\":\"bye2\"}}"
    )));
    assert_eq!(again.get("removed").and_then(Json::as_bool), Some(false));

    let g = svc.catalog().get("g").unwrap().graph();
    let (a, b) = missing_triangle_edge(&g);
    let upd = parse(&svc.handle_line(&format!(
        "{{\"op\":\"update\",\"graph\":\"g\",\"inserts\":[[{a},{b}]],\"id\":\"last\"}}"
    )));
    ok(&upd);
    match upd.get("subscriptions") {
        Some(Json::Arr(items)) => {
            assert_eq!(items.len(), 1);
            assert_eq!(items[0].get("sub").and_then(Json::as_u64), Some(sub2_id));
        }
        other => panic!("{other:?}"),
    }
}

/// Typed failures on the dynamic ops: unknown graph, bad pattern, and
/// the draining gate all answer with structured errors, never a panic.
#[test]
fn dynamic_op_errors_are_typed() {
    let svc = service();
    let doc =
        parse(&svc.handle_line(
            "{\"op\":\"update\",\"graph\":\"nope\",\"inserts\":[[0,1]],\"id\":\"e1\"}",
        ));
    assert_eq!(
        doc.get("code").and_then(Json::as_str),
        Some("unknown_graph")
    );
    let doc = parse(&svc.handle_line(
        "{\"op\":\"subscribe\",\"pattern\":\"heptadecagon\",\"graph\":\"g\",\"id\":\"e2\"}",
    ));
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("bad_pattern"));

    let _ = svc.handle_line("{\"op\":\"shutdown\",\"id\":\"bye\"}");
    let doc = parse(
        &svc.handle_line("{\"op\":\"update\",\"graph\":\"g\",\"inserts\":[[0,1]],\"id\":\"e3\"}"),
    );
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("draining"));
    let doc =
        parse(&svc.handle_line("{\"op\":\"subscribe\",\"pattern\":\"triangle\",\"id\":\"e4\"}"));
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("draining"));
}

/// Updates and queries interleaved from concurrent threads: every query
/// response must equal a full recount on some committed generation's
/// graph — never a torn view, never a count from a stale cache entry.
#[test]
fn concurrent_queries_see_committed_generations_only() {
    let svc = service();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    // Writer: alternately deletes and reinserts the same base edge, so
    // the graph flips between exactly two known states.
    let g0 = svc.catalog().get("g").unwrap().graph();
    let u = (0..g0.num_vertices() as u32)
        .find(|&v| !g0.neighbors(v).is_empty())
        .unwrap();
    let v = g0.neighbors(u)[0];
    let with_edge = run_query(&Query::Triangle.pattern(), &g0, &EngineConfig::light()).matches;
    let without = {
        let mut d = light::graph::delta::DeltaGraph::new(Arc::clone(&g0));
        d.apply(&[(u, v)], &[]);
        run_query(
            &Query::Triangle.pattern(),
            &d.merged_arc(),
            &EngineConfig::light(),
        )
        .matches
    };

    let writer = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut gen = 0;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (field, id) = if gen % 2 == 0 {
                    ("deletes", "del")
                } else {
                    ("inserts", "ins")
                };
                let resp = svc.handle_line(&format!(
                    "{{\"op\":\"update\",\"graph\":\"g\",\"{field}\":[[{u},{v}]],\"id\":\"{id}\"}}"
                ));
                let doc = Json::parse(&resp).unwrap();
                assert_eq!(
                    doc.get("status").and_then(Json::as_str),
                    Some("ok"),
                    "{resp}"
                );
                gen += 1;
            }
        })
    };

    let readers: Vec<_> = (0..3)
        .map(|r| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for i in 0..25 {
                    let resp = svc.handle_line(&format!(
                        "{{\"op\":\"query\",\"pattern\":\"triangle\",\"graph\":\"g\",\"id\":\"r{r}-{i}\"}}"
                    ));
                    let doc = Json::parse(&resp).unwrap();
                    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"), "{resp}");
                    let m = doc.get("matches").and_then(Json::as_u64).unwrap();
                    assert!(
                        m == with_edge || m == without,
                        "reader {r} iteration {i}: count {m} matches neither committed \
                         state ({with_edge} with the edge, {without} without)"
                    );
                }
            })
        })
        .collect();

    for r in readers {
        r.join().expect("reader");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().expect("writer");
}
