//! Cancellation-latency regression tests: a [`CancelToken`] flipped
//! mid-run must stop the enumeration promptly (the CLI wires Ctrl-C to
//! this token — a sluggish response here is user-visible), and the
//! partial result handed back must be well-formed.
//!
//! The workload (P7 on K150) is combinatorially enormous — thousands of
//! seconds uncancelled — so the run is always mid-flight when the token
//! flips; the watchdog, not the workload, bounds test time.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use light::core::{run_query, Outcome};
use light::graph::generators;
use light::prelude::*;

/// Response bound from `cancel()` to the run returning. The engines poll
/// the token every 1024 ticks (`DEADLINE_POLL_PERIOD`), which is tens of
/// microseconds of work; 100 ms of slack absorbs scheduler noise. Debug
/// builds run the hot loop ~20x slower, so the bound relaxes.
fn latency_bound() -> Duration {
    if cfg!(debug_assertions) {
        Duration::from_millis(2000)
    } else {
        Duration::from_millis(100)
    }
}

const STARTUP: Duration = Duration::from_millis(200);
const WATCHDOG: Duration = Duration::from_secs(30);

/// Start `f` on a thread, let it get going, flip the token, and return
/// (cancel→return latency, f's result).
fn cancel_midway<T: Send + 'static>(
    token: CancelToken,
    f: impl FnOnce() -> T + Send + 'static,
) -> (Duration, T) {
    let (tx, rx) = mpsc::channel();
    let h = std::thread::spawn(move || {
        let out = f();
        let _ = tx.send(Instant::now());
        out
    });
    std::thread::sleep(STARTUP);
    let flipped = Instant::now();
    token.cancel();
    let finished = rx
        .recv_timeout(WATCHDOG)
        .expect("run did not return after cancellation");
    let latency = finished.saturating_duration_since(flipped);
    (latency, h.join().expect("worker thread panicked"))
}

#[test]
fn parallel_cancel_returns_promptly_with_partial_result() {
    let token = CancelToken::new();
    let cfg = EngineConfig::light().cancel_token(token.clone());
    let (latency, pr) = cancel_midway(token, move || {
        let g = generators::complete(150);
        run_query_parallel(&Query::P7.pattern(), &g, &cfg, &ParallelConfig::new(4))
    });
    assert!(
        latency <= latency_bound(),
        "cancel-to-return took {latency:?} (bound {:?})",
        latency_bound()
    );
    assert_eq!(pr.report.outcome, Outcome::Cancelled);
    assert!(!pr.is_complete());
    let part = pr.partial_result();
    // Cancellation abandons roots without failing them: accounting stays
    // a valid lower bound, and nothing is reported as a panic.
    assert!(part.failed_subtrees == 0 && pr.failures.is_empty());
    assert!(part.completed_subtrees < 150);
    assert_eq!(part.count, pr.report.matches);
}

#[test]
fn serial_cancel_returns_promptly() {
    let token = CancelToken::new();
    let cfg = EngineConfig::light().cancel_token(token.clone());
    let (latency, report) = cancel_midway(token, move || {
        let g = generators::complete(150);
        run_query(&Query::P7.pattern(), &g, &cfg)
    });
    assert!(
        latency <= latency_bound(),
        "cancel-to-return took {latency:?} (bound {:?})",
        latency_bound()
    );
    assert_eq!(report.outcome, Outcome::Cancelled);
    assert!(!report.is_complete());
}
