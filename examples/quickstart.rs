//! Quickstart: count diamonds in a small social-network-like graph and
//! peek at the query plan LIGHT built.
//!
//! Run with: `cargo run --release --example quickstart`

use light::order::QueryPlan;
use light::prelude::*;

fn main() {
    // 1. A data graph. Build your own from edges, load a SNAP-style edge
    //    list with `light::graph::io::load_edge_list`, or use a generator.
    let raw = light::graph::generators::barabasi_albert(10_000, 4, 42);

    // 2. Relabel so vertex IDs respect the (degree, id) order — this makes
    //    the symmetry-breaking checks plain integer comparisons. The
    //    bundled `datasets` are already relabeled.
    let (g, _mapping) = light::graph::ordered::into_degree_ordered(&raw);
    println!(
        "data graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    // 3. A pattern. The paper's catalog is in `Query`; arbitrary patterns
    //    via `PatternGraph::from_edges`.
    let diamond = Query::P2.pattern();
    println!("pattern: {} ({})", Query::P2.name(), Query::P2.shape());

    // 4. Inspect the plan LIGHT would use (optional).
    let plan = QueryPlan::optimized(&diamond, &g);
    println!("enumeration order pi = {:?}", plan.pi());
    println!(
        "execution order sigma = {:?}",
        plan.sigma()
            .iter()
            .map(|op| format!("{op:?}"))
            .collect::<Vec<_>>()
    );
    println!(
        "set intersections per search path: {}",
        plan.per_path_intersections()
    );

    // 5. Run it. `run_query` counts; visitors can collect or stop early.
    let report = run_query(&diamond, &g, &EngineConfig::light());
    println!(
        "LIGHT: {} diamonds in {:?} ({} set intersections)",
        report.matches, report.elapsed, report.stats.intersect.total
    );

    // 6. Compare with the SE baseline — same answer, more work.
    let se = run_query(&diamond, &g, &EngineConfig::se());
    assert_eq!(se.matches, report.matches);
    println!(
        "SE:    {} diamonds in {:?} ({} set intersections)",
        se.matches, se.elapsed, se.stats.intersect.total
    );

    // 7. Scale out with the work-stealing parallel driver.
    let par = run_query_parallel(
        &diamond,
        &g,
        &EngineConfig::light(),
        &ParallelConfig::new(4),
    );
    assert_eq!(par.report.matches, report.matches);
    println!(
        "LIGHT x4 threads: {} diamonds in {:?}",
        par.report.matches, par.report.elapsed
    );
}
