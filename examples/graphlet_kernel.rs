//! Graphlet-kernel graph comparison [22]: represent each graph by its
//! vector of 4-vertex graphlet frequencies and compare graphs by cosine
//! similarity — subgraph enumeration as a feature extractor.
//!
//! Run with: `cargo run --release --example graphlet_kernel`

use light::prelude::*;

fn graphlets() -> Vec<PatternGraph> {
    vec![
        PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]), // path
        PatternGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]), // star
        PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]), // cycle
        PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]), // paw
        PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]), // diamond
        PatternGraph::complete(4),                              // clique
    ]
}

/// Normalized graphlet frequency vector.
fn signature(g: &CsrGraph) -> Vec<f64> {
    let counts: Vec<f64> = graphlets()
        .iter()
        .map(|p| run_query(p, g, &EngineConfig::light()).matches as f64)
        .collect();
    let total: f64 = counts.iter().sum::<f64>().max(1.0);
    counts.into_iter().map(|c| c / total).collect()
}

fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

fn main() {
    let build = |raw: CsrGraph| light::graph::ordered::into_degree_ordered(&raw).0;
    let graphs = [
        (
            "BA seed A",
            build(light::graph::generators::barabasi_albert(2_000, 4, 1)),
        ),
        (
            "BA seed B",
            build(light::graph::generators::barabasi_albert(2_000, 4, 2)),
        ),
        (
            "ER",
            build(light::graph::generators::erdos_renyi(2_000, 8_000, 1)),
        ),
        ("grid", build(light::graph::generators::grid(45, 45))),
    ];

    println!("4-vertex graphlet signatures (path star cycle paw diamond clique):\n");
    let sigs: Vec<(&str, Vec<f64>)> = graphs
        .iter()
        .map(|(name, g)| {
            let s = signature(g);
            println!(
                "  {name:<10} [{}]",
                s.iter()
                    .map(|x| format!("{x:.4}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            );
            (*name, s)
        })
        .collect();

    println!("\npairwise cosine similarity:");
    for i in 0..sigs.len() {
        for j in (i + 1)..sigs.len() {
            println!(
                "  {:<10} vs {:<10} {:.4}",
                sigs[i].0,
                sigs[j].0,
                cosine(&sigs[i].1, &sigs[j].1)
            );
        }
    }
    println!(
        "\nTwo BA graphs from different seeds are near-identical under the kernel;\n\
         both differ from the ER graph and dramatically from the grid."
    );
}
