//! Dense-community hunting: enumerate 5-cliques in parallel, find the
//! vertices that participate in the most cliques, and demo early
//! termination for existence queries.
//!
//! Run with: `cargo run --release --example clique_hunter`

use std::collections::HashMap;
use std::ops::ControlFlow;

use light::core::engine::run_plan;
use light::core::visitor::FnVisitor;
use light::order::QueryPlan;
use light::prelude::*;

fn main() {
    // A social-like graph with a dense core.
    let raw = light::graph::generators::barabasi_albert(20_000, 8, 99);
    let (g, _) = light::graph::ordered::into_degree_ordered(&raw);
    println!(
        "graph: {} vertices, {} edges, max degree {}",
        g.num_vertices(),
        g.num_edges(),
        g.max_degree()
    );

    let k5 = Query::P7.pattern();

    // 1. Existence: is there any 5-clique at all? Stop at the first match.
    let cfg = EngineConfig::light();
    let plan = QueryPlan::optimized(&k5, &g);
    let mut first = light::core::FirstKVisitor::new(1);
    let probe = run_plan(&plan, &g, &cfg, &mut first);
    match first.matches().first() {
        Some(m) => println!("first 5-clique found after {:?}: {m:?}", probe.elapsed),
        None => {
            println!("no 5-clique in this graph");
            return;
        }
    }

    // 2. Full parallel count.
    let par = run_query_parallel(&k5, &g, &cfg, &ParallelConfig::new(4));
    println!(
        "total 5-cliques: {} in {:?} across {} workers",
        par.report.matches,
        par.report.elapsed,
        par.workers.len()
    );

    // 3. Per-vertex clique participation (serial pass with a collecting
    //    closure — the visitor API composes with any aggregation).
    let mut participation: HashMap<u32, u64> = HashMap::new();
    let mut v = FnVisitor(|phi: &[u32]| {
        for &x in phi {
            *participation.entry(x).or_default() += 1;
        }
        ControlFlow::Continue(())
    });
    run_plan(&plan, &g, &cfg, &mut v);
    let mut top: Vec<(u32, u64)> = participation.into_iter().collect();
    top.sort_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
    println!("\ntop clique participants (vertex: clique count, degree):");
    for (vtx, count) in top.into_iter().take(5) {
        println!("  v{vtx}: {count} cliques, degree {}", g.degree(vtx));
    }
    println!("\nhigh-degree hubs dominate — the dense core of the BA graph.");
}
