//! Network-motif census: count every connected 4-vertex motif.
//!
//! Network motif discovery [26] is the first application the paper's
//! introduction motivates: find which small subgraphs are over-represented
//! in a network. This example counts all six connected 4-vertex motifs in
//! two graphs with identical size but different structure and compares
//! their motif profiles.
//!
//! Run with: `cargo run --release --example motif_census`

use light::prelude::*;

/// The six connected 4-vertex graphs.
fn motifs() -> Vec<(&'static str, PatternGraph)> {
    vec![
        (
            "path-4",
            PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]),
        ),
        (
            "star-4",
            PatternGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]),
        ),
        (
            "cycle-4",
            PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]),
        ),
        (
            "paw", // triangle + pendant edge
            PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3)]),
        ),
        (
            "diamond",
            PatternGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]),
        ),
        ("clique-4", PatternGraph::complete(4)),
    ]
}

fn census(g: &CsrGraph) -> Vec<(&'static str, u64)> {
    motifs()
        .into_iter()
        .map(|(name, p)| {
            let r = run_query(&p, g, &EngineConfig::light());
            (name, r.matches)
        })
        .collect()
}

fn main() {
    let n = 3_000;
    // Same vertex count, similar edge count, different wiring.
    let social = {
        let raw = light::graph::generators::barabasi_albert(n, 3, 7);
        light::graph::ordered::into_degree_ordered(&raw).0
    };
    let random = {
        let raw = light::graph::generators::erdos_renyi(n, social.num_edges(), 7);
        light::graph::ordered::into_degree_ordered(&raw).0
    };

    println!(
        "motif census over two graphs with N={n}, M={}\n",
        social.num_edges()
    );
    println!(
        "{:<10} {:>16} {:>16} {:>10}",
        "motif", "BA (social-like)", "ER (random)", "ratio"
    );
    for ((name, ba), (_, er)) in census(&social).into_iter().zip(census(&random)) {
        let ratio = if er > 0 {
            format!("{:.1}x", ba as f64 / er as f64)
        } else if ba > 0 {
            "inf".into()
        } else {
            "-".into()
        };
        println!("{name:<10} {ba:>16} {er:>16} {ratio:>10}");
    }
    println!(
        "\nThe preferential-attachment graph is dramatically enriched in dense motifs\n\
         (diamond, clique) relative to the degree-matched random graph — the kind of\n\
         signal motif-discovery pipelines are built on."
    );
}
