//! Labeled subgraph search via the bind-filter extension point.
//!
//! §II-B of the paper frames unlabeled enumeration as the hard special case
//! of labeled matching. The converse embedding is free in this library: a
//! label array plus a bind-time filter turns LIGHT into a labeled matcher.
//! Here: find "collaboration triangles" — one *manager* connected to two
//! *engineers* who also work together — in a synthetic org network.
//!
//! Run with: `cargo run --release --example labeled_search`

use std::sync::Arc;

use light::prelude::*;

const ENGINEER: u8 = 0;
const MANAGER: u8 = 1;

fn main() {
    // A social-like collaboration network.
    let raw = light::graph::generators::barabasi_albert(5_000, 5, 31);
    let (g, mapping) = light::graph::ordered::into_degree_ordered(&raw);

    // Assign roles: every 10th original vertex is a manager. (Labels are
    // user-side data — the library never sees them except via the filter.)
    let mut labels = vec![ENGINEER; g.num_vertices()];
    for old in (0..g.num_vertices()).step_by(10) {
        labels[mapping[old] as usize] = MANAGER;
    }
    let labels = Arc::new(labels);
    let managers = labels.iter().filter(|&&l| l == MANAGER).count();
    println!(
        "org network: {} people ({} managers), {} edges",
        g.num_vertices(),
        managers,
        g.num_edges()
    );

    // Pattern: a triangle where u0 is the manager. The label constraint
    // breaks the triangle's symmetry between u0 and {u1, u2}, but u1 and u2
    // stay interchangeable — handle that by disabling the automatic
    // symmetry breaking and keeping only φ(u1) < φ(u2).
    let triangle = Query::Triangle.pattern();
    let l = labels.clone();
    let cfg = EngineConfig::light().symmetry(false).filter(move |u, v| {
        let want = if u == 0 { MANAGER } else { ENGINEER };
        l[v as usize] == want
    });

    let plan = cfg.plan(&triangle, &g);
    let mut count = 0u64;
    for m in light::core::MatchIter::new(&plan, &g, &cfg) {
        if m[1] < m[2] {
            // residual symmetry: u1 <-> u2
            count += 1;
        }
    }
    println!("manager-engineer-engineer triangles: {count}");

    // Cross-check: all triangles minus label-filtered should dominate.
    let all = run_query(&triangle, &g, &EngineConfig::light());
    println!("total triangles (unlabeled):          {}", all.matches);
    assert!(count <= all.matches);

    // Degree-pruned clique search: a sound filter for clique patterns.
    let k4 = Query::P3.pattern();
    let gg = g.clone();
    let pruned_cfg = EngineConfig::light().filter(move |_, v| gg.degree(v) >= 3);
    let pruned = run_query(&k4, &g, &pruned_cfg);
    let plain = run_query(&k4, &g, &EngineConfig::light());
    assert_eq!(pruned.matches, plain.matches);
    println!(
        "4-cliques: {} (degree-pruned run attempted {} bindings vs {} unpruned)",
        plain.matches, pruned.stats.bindings, plain.stats.bindings
    );
}
